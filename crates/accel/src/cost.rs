//! Per-head cost accounting: one simulation priced in cycles, wall-clock
//! time at the tile's clock, and energy.
//!
//! The suite-execution engine (`leopard-runtime`) schedules thousands of
//! per-head simulation jobs and aggregates their costs; this module gives it
//! a single value type that carries everything a scheduler or report needs,
//! computed from a [`HeadSimResult`] without re-running the simulator.
//!
//! The module also pins down the thread-safety contract the engine relies
//! on: workload and result types must be `Send + Sync` so workloads can be
//! shared read-only across worker threads and results can be collected from
//! them. The assertions below make that a compile-time guarantee instead of
//! an accident of field types.

use crate::config::TileConfig;
use crate::energy::{energy_from_events, EnergyBreakdown, EnergyModel};
use crate::sim::{simulate_head, HeadSimResult, HeadWorkload};

/// Compile-time guarantee that the simulator's workload/result types can
/// cross thread boundaries (shared read-only or moved out of workers).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HeadWorkload>();
    assert_send_sync::<HeadSimResult>();
    assert_send_sync::<TileConfig>();
    assert_send_sync::<EnergyModel>();
    assert_send_sync::<EnergyBreakdown>();
    assert_send_sync::<HeadCost>();
};

/// The full cost of simulating one attention head on one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadCost {
    /// Total tile cycles to drain the head.
    pub cycles: u64,
    /// Wall-clock latency implied by the cycle count at the tile's clock,
    /// in microseconds.
    pub latency_us: f64,
    /// Energy breakdown priced by the event-based model.
    pub energy: EnergyBreakdown,
    /// Fraction of scores pruned.
    pub pruning_rate: f64,
    /// Mean K magnitude bits processed per score.
    pub mean_bits: f64,
}

impl HeadCost {
    /// Prices an already-computed simulation result.
    pub fn from_result(result: &HeadSimResult, config: &TileConfig, model: &EnergyModel) -> Self {
        let latency_us = result.total_cycles as f64 / config.frequency_mhz as f64;
        Self {
            cycles: result.total_cycles,
            latency_us,
            energy: energy_from_events(&result.events, config, model),
            pruning_rate: result.pruning_rate(),
            mean_bits: result.mean_bits_processed(),
        }
    }

    /// Total energy across all components (same units as the model).
    pub fn energy_total(&self) -> f64 {
        self.energy.total()
    }

    /// Energy-delay product, the joint figure of merit used when comparing
    /// design points (lower is better).
    pub fn energy_delay_product(&self) -> f64 {
        self.energy.total() * self.latency_us
    }
}

/// Simulates a head and prices it in one call.
///
/// # Panics
///
/// Panics if the configuration is invalid or the workload is degenerate
/// (zero-length sequence) — the same conditions as [`simulate_head`].
pub fn head_cost(workload: &HeadWorkload, config: &TileConfig, model: &EnergyModel) -> HeadCost {
    let result = simulate_head(workload, config);
    HeadCost::from_result(&result, config, model)
}

/// Fraction of a pruned dot product's serial steps the early-termination
/// logic is assumed to save, on average, when nothing has been measured
/// yet. The exact saving depends on the score distribution; roughly half
/// the magnitude bits matches the Figure 8 bit profiles across the suite.
/// Fitted per-family constants ([`CostModel::fit_from_results`]) replace
/// this default wherever a measured bit profile exists.
const DEFAULT_EARLY_TERMINATION_SAVING: f64 = 0.45;

/// One calibration observation for [`CostModel::fit_from_results`]: a
/// measured simulation result plus the workload context it was measured
/// under (the simulator result alone does not record its configuration or
/// sequence length).
#[derive(Debug, Clone, Copy)]
pub struct FitObservation<'a> {
    /// Task-family label the observation belongs to.
    pub family: &'a str,
    /// The measured simulation result (bit profile + total cycles).
    pub result: &'a HeadSimResult,
    /// Tile configuration the result was measured on.
    pub config: &'a TileConfig,
    /// Sequence length of the measured workload.
    pub seq_len: usize,
}

/// Per-family constants of the fitted cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FamilyFit {
    /// Early-termination saving read off the pruned bit profile.
    saving: f64,
    /// Multiplicative calibration: measured cycles over the analytical
    /// prediction at the calibration point.
    scale: f64,
}

/// Analytical cycle predictor with per-task-family constants fitted from
/// measured bit profiles.
///
/// The predictor itself is pure arithmetic over the tile parameters (see
/// [`CostModel::predict_head_cycles`]); the empirical quantities it needs
/// are per task family, fitted by [`CostModel::fit_from_results`]:
///
/// * the **early-termination saving** — how much of a pruned dot product's
///   serial steps stopping early saves. It varies by family (MemN2N scores
///   collapse within a couple of magnitude bits while ViT scores need most
///   of them) and is read directly off the measured pruned-bit profile;
/// * a **calibration scale** — the ratio of measured to analytically
///   predicted cycles at the calibration point, absorbing the pipeline
///   second-order effects (row drains, FIFO stalls) the closed-form model
///   leaves out.
///
/// Families that were never fitted fall back to a flat default saving and
/// unit scale — the pre-fit analytical model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// `(family label, fitted constants)` pairs, one per fitted family.
    fits: Vec<(String, FamilyFit)>,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::analytical()
    }
}

impl CostModel {
    /// The unfitted model: every family uses the flat analytical default
    /// (~45% of a pruned dot's serial steps saved, unit scale).
    pub fn analytical() -> Self {
        Self { fits: Vec::new() }
    }

    /// Fits the per-family constants from measured simulation results.
    ///
    /// For every observation the saving is read off the pruned bit
    /// profile: a dot pruned after `b` of the `W` magnitude bits saved
    /// `1 - b/W` of its serial steps, so the family's saving is the
    /// histogram-weighted mean of that quantity. The calibration scale is
    /// the mean ratio of measured cycles to the analytical prediction
    /// (under the fitted saving, at the observation's measured pruning
    /// rate). Multiple observations under the same label are pooled.
    /// Observations whose profile recorded no pruned dot contribute only
    /// to the scale; a family with no observation keeps the analytical
    /// default.
    pub fn fit_from_results<'a, I>(observations: I) -> Self
    where
        I: IntoIterator<Item = FitObservation<'a>>,
    {
        // Pool per label, preserving first-seen label order so the fit is
        // deterministic for any input order of equal content.
        struct Pool<'a> {
            label: String,
            histogram: Vec<u64>,
            observations: Vec<FitObservation<'a>>,
        }
        let mut pools: Vec<Pool<'a>> = Vec::new();
        for observation in observations {
            let pool = match pools.iter_mut().find(|p| p.label == observation.family) {
                Some(pool) => pool,
                None => {
                    pools.push(Pool {
                        label: observation.family.to_string(),
                        histogram: Vec::new(),
                        observations: Vec::new(),
                    });
                    pools.last_mut().expect("just pushed") // lint:allow(panic-in-library, reason = "the entry was pushed on the line above; last_mut cannot be None")
                }
            };
            let profile = &observation.result.pruned_bits_histogram;
            if pool.histogram.len() < profile.len() {
                pool.histogram.resize(profile.len(), 0);
            }
            for (slot, &count) in pool.histogram.iter_mut().zip(profile) {
                *slot += count;
            }
            pool.observations.push(observation);
        }
        let fits = pools
            .into_iter()
            .map(|pool| {
                let saving = saving_from_pruned_bits(&pool.histogram)
                    .unwrap_or(DEFAULT_EARLY_TERMINATION_SAVING);
                // Scale: mean measured/analytical ratio over observations,
                // clamped against degenerate calibration workloads.
                let ratios: Vec<f64> = pool
                    .observations
                    .iter()
                    .map(|o| {
                        let analytical = predict_head_cycles_with(
                            o.config,
                            o.seq_len,
                            o.result.pruning_rate(),
                            saving,
                            1.0,
                            1,
                        );
                        o.result.total_cycles as f64 / analytical as f64
                    })
                    .collect();
                let scale = (ratios.iter().sum::<f64>() / ratios.len() as f64).clamp(0.25, 4.0);
                (pool.label, FamilyFit { saving, scale })
            })
            .collect();
        Self { fits }
    }

    fn fit(&self, family: &str) -> FamilyFit {
        self.fits.iter().find(|(label, _)| label == family).map_or(
            FamilyFit {
                saving: DEFAULT_EARLY_TERMINATION_SAVING,
                scale: 1.0,
            },
            |(_, fit)| *fit,
        )
    }

    /// The early-termination saving used for `family`: the fitted constant
    /// if one exists, the analytical default otherwise.
    pub fn saving(&self, family: &str) -> f64 {
        self.fit(family).saving
    }

    /// The calibration scale used for `family` (`1.0` when unfitted).
    pub fn scale(&self, family: &str) -> f64 {
        self.fit(family).scale
    }

    /// Number of families with a fitted (non-default) entry.
    pub fn fitted_families(&self) -> usize {
        self.fits.len()
    }

    /// Predicts the cycles one attention head of sequence length `seq_len`
    /// of a `family` task needs on `config`, **without running the
    /// simulator** — pure arithmetic over the tile parameters, an expected
    /// pruning rate, and the family's fitted constants; cheap enough to
    /// call per request on a serving admission path.
    ///
    /// The model mirrors the simulator's timing structure: per Q row the
    /// front-end distributes `seq_len` dot products over the `N_QK` DPUs (a
    /// full dot costs [`TileConfig::full_dot_cycles`]; with early
    /// termination a pruned dot stops after the family's fitted fraction of
    /// its serial steps), the back-end consumes one surviving score per
    /// cycle, and rows pipeline so each costs the maximum of the two
    /// stages; the family's calibration scale then absorbs what the closed
    /// form leaves out.
    ///
    /// `pruning_rate` is the expected fraction of scores below the
    /// threshold (clamped to `[0, 1]`); it is ignored by configurations
    /// that do not prune.
    pub fn predict_head_cycles(
        &self,
        family: &str,
        config: &TileConfig,
        seq_len: usize,
        pruning_rate: f64,
    ) -> u64 {
        self.predict_head_cycles_tiled(family, config, seq_len, pruning_rate, 1)
    }

    /// Tile-aware form of [`predict_head_cycles`](Self::predict_head_cycles):
    /// predicted cycles for one head whose Q rows are partitioned across
    /// `tiles` tiles (the busiest tile's makespan). The per-row work
    /// divides across tiles — the busiest tile processes
    /// `ceil(seq_len / tiles)` rows — while the pipeline fill/drain term
    /// (`min(front-end, back-end)` row cost) is the **merge overhead**:
    /// every tile pays it once, so it does not divide.
    ///
    /// Predictions are monotonically non-increasing in `tiles` (the tile
    /// count is clamped to the row count, so over-tiling plateaus instead
    /// of paying for idle tiles), and `tiles = 1` reproduces
    /// [`predict_head_cycles`](Self::predict_head_cycles) exactly.
    pub fn predict_head_cycles_tiled(
        &self,
        family: &str,
        config: &TileConfig,
        seq_len: usize,
        pruning_rate: f64,
        tiles: usize,
    ) -> u64 {
        let fit = self.fit(family);
        predict_head_cycles_with(config, seq_len, pruning_rate, fit.saving, fit.scale, tiles)
    }

    /// Predicts the cycles a whole inference request of a `family` task
    /// (all `heads` attention heads of one layer, executed sequentially on
    /// one tile) needs on `config`. This is the quantity the cost-model
    /// scheduler and SLO admission controller in `leopard-runtime` act on.
    pub fn predict_request_cycles(
        &self,
        family: &str,
        config: &TileConfig,
        seq_len: usize,
        heads: usize,
        pruning_rate: f64,
    ) -> u64 {
        self.predict_request_cycles_tiled(family, config, seq_len, heads, pruning_rate, 1)
    }

    /// Tile-aware form of
    /// [`predict_request_cycles`](Self::predict_request_cycles): the heads
    /// still execute sequentially, but each head's rows are partitioned
    /// across `tiles` tiles (see
    /// [`predict_head_cycles_tiled`](Self::predict_head_cycles_tiled)).
    pub fn predict_request_cycles_tiled(
        &self,
        family: &str,
        config: &TileConfig,
        seq_len: usize,
        heads: usize,
        pruning_rate: f64,
        tiles: usize,
    ) -> u64 {
        heads.max(1) as u64
            * self.predict_head_cycles_tiled(family, config, seq_len, pruning_rate, tiles)
    }
}

/// Fraction of the *remaining* (unpruned) back-end work that each step of
/// the graceful-degradation ladder removes: level `k` keeps
/// `(1 - DEGRADATION_STEP)^k` of the surviving rows. See
/// [`degraded_pruning_rate`].
pub const DEGRADATION_STEP: f64 = 0.5;

/// The effective pruning rate after tightening the early-termination
/// threshold by `level` steps of the graceful-degradation ladder.
///
/// Level 0 is full service (`rate` unchanged). Each further level prunes
/// half ([`DEGRADATION_STEP`]) of the rows that still survived:
/// `1 - (1 - rate) * (1 - DEGRADATION_STEP)^level`. The result is
/// monotone in `level`, approaches (but never reaches) 1, and feeds the
/// same [`CostModel`] prediction paths as the nominal rate — degraded
/// service is *cheaper by the cost model's own arithmetic*, which is what
/// lets the serving replay trade accuracy headroom for predicted cycles
/// deterministically.
pub fn degraded_pruning_rate(rate: f64, level: u32) -> f64 {
    let survival = (1.0 - rate.clamp(0.0, 1.0)) * (1.0 - DEGRADATION_STEP).powi(level as i32);
    (1.0 - survival).clamp(0.0, 1.0)
}

/// Mean fraction of serial steps saved over the pruned dots of a bit
/// profile: a dot that stopped after `b` of `W` magnitude bits saved
/// `1 - b/W`. Returns `None` when the histogram recorded no pruned dot
/// (nothing to fit from).
fn saving_from_pruned_bits(histogram: &[u64]) -> Option<f64> {
    let total: u64 = histogram.iter().sum();
    if total == 0 || histogram.len() < 2 {
        return None;
    }
    let width = (histogram.len() - 1) as f64;
    let weighted: u64 = histogram
        .iter()
        .enumerate()
        .map(|(bits, &count)| bits as u64 * count)
        .sum();
    let mean_bits = weighted as f64 / total as f64;
    Some((1.0 - mean_bits / width).clamp(0.0, 1.0))
}

/// [`CostModel::predict_head_cycles_tiled`] with explicit constants — the
/// shared arithmetic core of every prediction path.
fn predict_head_cycles_with(
    config: &TileConfig,
    seq_len: usize,
    pruning_rate: f64,
    saving: f64,
    scale: f64,
    tiles: usize,
) -> u64 {
    let s = seq_len.max(1) as f64;
    let rate = if config.pruning_enabled {
        pruning_rate.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let full_dot = f64::from(config.full_dot_cycles());
    let dot_cycles = if config.early_termination {
        full_dot * (1.0 - rate * saving.clamp(0.0, 1.0))
    } else {
        full_dot
    };
    let dots_per_dpu = (s / config.n_qk_dpu as f64).ceil();
    let frontend_row = dots_per_dpu * dot_cycles;
    let backend_row = s * (1.0 - rate);
    // Rows divide across tiles (the busiest tile gets the ceiling); rows
    // pipeline within a tile: steady state advances at the slower stage's
    // pace, plus one drain of the faster stage — the drain is the merge
    // overhead, paid per tile rather than divided. Clamping the tile count
    // to the row count keeps the prediction monotone under over-tiling.
    let tile_rows = (s / tiles.max(1).min(seq_len.max(1)) as f64).ceil();
    let cycles = tile_rows * frontend_row.max(backend_row) + frontend_row.min(backend_row);
    ((cycles * scale).round() as u64).max(1)
}

/// Predicts the cycles one attention head of sequence length `seq_len`
/// needs on `config` under the flat analytical saving — the family-agnostic
/// convenience form of [`CostModel::predict_head_cycles`].
pub fn predict_head_cycles(config: &TileConfig, seq_len: usize, pruning_rate: f64) -> u64 {
    CostModel::analytical().predict_head_cycles("", config, seq_len, pruning_rate)
}

/// Predicts the cycles a whole inference request (all `heads` attention
/// heads of one layer, executed sequentially on one tile) needs on
/// `config`, under the flat analytical saving — the family-agnostic
/// convenience form of [`CostModel::predict_request_cycles`].
///
/// # Examples
///
/// ```
/// use leopard_accel::config::TileConfig;
/// use leopard_accel::cost::predict_request_cycles;
///
/// let config = TileConfig::ae_leopard();
/// // Twelve heads cost exactly twelve times one head: heads execute
/// // sequentially on one tile.
/// let one = predict_request_cycles(&config, 96, 1, 0.8);
/// assert_eq!(predict_request_cycles(&config, 96, 12, 0.8), 12 * one);
/// // Heavier pruning means fewer cycles on a pruning-enabled tile.
/// assert!(predict_request_cycles(&config, 96, 1, 0.9) < one);
/// ```
pub fn predict_request_cycles(
    config: &TileConfig,
    seq_len: usize,
    heads: usize,
    pruning_rate: f64,
) -> u64 {
    CostModel::analytical().predict_request_cycles("", config, seq_len, heads, pruning_rate)
}

/// Tile-aware, family-agnostic convenience form of
/// [`CostModel::predict_request_cycles_tiled`]: predicted cycles for a
/// request whose heads each execute partitioned across `tiles` tiles.
///
/// # Examples
///
/// ```
/// use leopard_accel::config::TileConfig;
/// use leopard_accel::cost::{predict_request_cycles, predict_request_cycles_tiled};
///
/// let config = TileConfig::ae_leopard();
/// // One tile reproduces the single-tile predictor exactly; more tiles
/// // never predict more cycles.
/// assert_eq!(
///     predict_request_cycles_tiled(&config, 96, 12, 0.8, 1),
///     predict_request_cycles(&config, 96, 12, 0.8)
/// );
/// assert!(
///     predict_request_cycles_tiled(&config, 96, 12, 0.8, 4)
///         < predict_request_cycles(&config, 96, 12, 0.8)
/// );
/// ```
pub fn predict_request_cycles_tiled(
    config: &TileConfig,
    seq_len: usize,
    heads: usize,
    pruning_rate: f64,
    tiles: usize,
) -> u64 {
    CostModel::analytical().predict_request_cycles_tiled(
        "",
        config,
        seq_len,
        heads,
        pruning_rate,
        tiles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_tensor::rng;

    fn workload(seed: u64) -> HeadWorkload {
        let mut r = rng::seeded(seed);
        let q = rng::normal_matrix(&mut r, 24, 32, 0.0, 1.0);
        let k = rng::normal_matrix(&mut r, 24, 32, 0.0, 1.0);
        HeadWorkload::from_float(&q, &k, 0.2, 12)
    }

    #[test]
    fn cost_matches_underlying_simulation() {
        let w = workload(1);
        let cfg = TileConfig::ae_leopard();
        let model = EnergyModel::calibrated();
        let sim = simulate_head(&w, &cfg);
        let cost = head_cost(&w, &cfg, &model);
        assert_eq!(cost.cycles, sim.total_cycles);
        assert_eq!(cost.energy, energy_from_events(&sim.events, &cfg, &model));
        assert!((cost.pruning_rate - sim.pruning_rate()).abs() < 1e-12);
    }

    #[test]
    fn latency_follows_clock_frequency() {
        let w = workload(2);
        let model = EnergyModel::calibrated();
        let cfg = TileConfig::ae_leopard();
        let cost = head_cost(&w, &cfg, &model);
        let expected = cost.cycles as f64 / cfg.frequency_mhz as f64;
        assert!((cost.latency_us - expected).abs() < 1e-12);
        assert!(cost.latency_us > 0.0);
    }

    #[test]
    fn prediction_tracks_sequence_length_superlinearly() {
        let cfg = TileConfig::ae_leopard();
        let short = predict_head_cycles(&cfg, 24, 0.5);
        let long = predict_head_cycles(&cfg, 96, 0.5);
        // Cycles scale with s^2; quadrupling s must far more than quadruple.
        assert!(long > short * 8, "short {short}, long {long}");
    }

    #[test]
    fn prediction_decreases_with_pruning_on_leopard_but_not_baseline() {
        let ae = TileConfig::ae_leopard();
        assert!(predict_head_cycles(&ae, 64, 0.9) < predict_head_cycles(&ae, 64, 0.1));
        let base = TileConfig::baseline();
        assert_eq!(
            predict_head_cycles(&base, 64, 0.9),
            predict_head_cycles(&base, 64, 0.1),
            "the unpruned baseline ignores the expected pruning rate"
        );
    }

    #[test]
    fn prediction_orders_workloads_like_the_simulator() {
        let cfg = TileConfig::ae_leopard();
        let model = EnergyModel::calibrated();
        let sized = |s: usize| {
            let mut r = rng::seeded(11);
            let q = rng::normal_matrix(&mut r, s, 32, 0.0, 1.0);
            let k = rng::normal_matrix(&mut r, s, 32, 0.0, 1.0);
            let w = HeadWorkload::from_float(&q, &k, 0.1, 12);
            head_cost(&w, &cfg, &model).cycles
        };
        let (small, big) = (sized(16), sized(64));
        let (p_small, p_big) = (
            predict_head_cycles(&cfg, 16, 0.5),
            predict_head_cycles(&cfg, 64, 0.5),
        );
        assert!(small < big);
        assert!(p_small < p_big, "prediction must preserve the ordering");
        // The prediction is a model, not the simulator — but it should land
        // within a small constant factor of the measured cycles.
        for (predicted, actual) in [(p_small, small), (p_big, big)] {
            let ratio = predicted as f64 / actual as f64;
            assert!(
                (0.3..=3.0).contains(&ratio),
                "predicted {predicted} vs actual {actual}"
            );
        }
    }

    #[test]
    fn request_prediction_scales_with_heads() {
        let cfg = TileConfig::hp_leopard();
        let one = predict_request_cycles(&cfg, 48, 1, 0.6);
        let twelve = predict_request_cycles(&cfg, 48, 12, 0.6);
        assert_eq!(twelve, one * 12);
        // Degenerate inputs clamp instead of panicking.
        assert_eq!(predict_request_cycles(&cfg, 48, 0, 0.6), one);
        assert!(predict_head_cycles(&cfg, 0, 2.0) >= 1);
    }

    fn observe<'a>(
        family: &'a str,
        result: &'a HeadSimResult,
        config: &'a TileConfig,
    ) -> FitObservation<'a> {
        FitObservation {
            family,
            result,
            config,
            seq_len: 24,
        }
    }

    #[test]
    fn fitted_model_reads_savings_off_the_bit_profile() {
        let cfg = TileConfig::ae_leopard();
        let heavy = simulate_head(&workload(4), &cfg);
        assert!(
            heavy.pruned_scores > 0,
            "fixture must prune something to fit from"
        );
        let model = CostModel::fit_from_results([observe("MemN2N", &heavy, &cfg)]);
        assert_eq!(model.fitted_families(), 1);
        // The fitted saving equals 1 - mean pruned bits / magnitude width.
        let total: u64 = heavy.pruned_bits_histogram.iter().sum();
        let weighted: u64 = heavy
            .pruned_bits_histogram
            .iter()
            .enumerate()
            .map(|(bits, &count)| bits as u64 * count)
            .sum();
        let width = (heavy.pruned_bits_histogram.len() - 1) as f64;
        let expected = 1.0 - (weighted as f64 / total as f64) / width;
        assert!((model.saving("MemN2N") - expected).abs() < 1e-12);
        // The calibration scale centers the prediction on the measured
        // cycles at the calibration point.
        let predicted = model.predict_head_cycles("MemN2N", &cfg, 24, heavy.pruning_rate());
        let ratio = predicted as f64 / heavy.total_cycles as f64;
        assert!(
            (0.99..=1.01).contains(&ratio),
            "calibrated prediction {predicted} vs measured {}",
            heavy.total_cycles
        );
        // Unfitted families fall back to the analytical default.
        assert_eq!(
            model.saving("ViT-B"),
            DEFAULT_EARLY_TERMINATION_SAVING,
            "unknown family must use the default saving"
        );
        assert_eq!(model.scale("ViT-B"), 1.0);
        assert_eq!(CostModel::analytical().fitted_families(), 0);
    }

    #[test]
    fn pooled_fits_average_multiple_results_per_family() {
        let cfg = TileConfig::ae_leopard();
        let a = simulate_head(&workload(5), &cfg);
        let b = simulate_head(&workload(6), &cfg);
        let pooled =
            CostModel::fit_from_results([observe("BERT-B", &a, &cfg), observe("BERT-B", &b, &cfg)]);
        assert_eq!(pooled.fitted_families(), 1);
        let only_a = CostModel::fit_from_results([observe("BERT-B", &a, &cfg)]);
        let only_b = CostModel::fit_from_results([observe("BERT-B", &b, &cfg)]);
        let (lo, hi) = if only_a.saving("BERT-B") <= only_b.saving("BERT-B") {
            (only_a.saving("BERT-B"), only_b.saving("BERT-B"))
        } else {
            (only_b.saving("BERT-B"), only_a.saving("BERT-B"))
        };
        let s = pooled.saving("BERT-B");
        assert!(
            (lo..=hi).contains(&s),
            "pooled saving {s} outside [{lo}, {hi}]"
        );
    }

    #[test]
    fn higher_saving_predicts_fewer_cycles_on_pruning_tiles_only() {
        let cfg = TileConfig::ae_leopard();
        let result = HeadSimResult {
            // All pruned dots stopped after 1 of 11 magnitude bits.
            pruned_bits_histogram: {
                let mut h = vec![0u64; 12];
                h[1] = 100;
                h
            },
            ..simulate_head(&workload(7), &cfg)
        };
        let quick = CostModel::fit_from_results([observe("fast", &result, &cfg)]);
        assert!(quick.saving("fast") > 0.9);
        // Compare at unit scale so only the saving differs.
        let saving_only = CostModel {
            fits: vec![(
                "fast".to_string(),
                FamilyFit {
                    saving: quick.saving("fast"),
                    scale: 1.0,
                },
            )],
        };
        let ae = TileConfig::ae_leopard();
        assert!(
            saving_only.predict_head_cycles("fast", &ae, 64, 0.8)
                < CostModel::analytical().predict_head_cycles("fast", &ae, 64, 0.8)
        );
        // The unpruned baseline ignores the saving entirely.
        let base = TileConfig::baseline();
        assert_eq!(
            saving_only.predict_head_cycles("fast", &base, 64, 0.8),
            CostModel::analytical().predict_head_cycles("fast", &base, 64, 0.8)
        );
    }

    #[test]
    fn empty_bit_profiles_fall_back_to_the_default_saving() {
        let cfg = TileConfig::ae_leopard();
        let mut result = simulate_head(&workload(8), &cfg);
        result.pruned_bits_histogram = vec![0; 12];
        let model = CostModel::fit_from_results([observe("GPT-2-L", &result, &cfg)]);
        // The family is still calibrated (scale) but keeps the default
        // saving — there was no pruned dot to read a saving from.
        assert_eq!(model.fitted_families(), 1);
        assert_eq!(model.saving("GPT-2-L"), DEFAULT_EARLY_TERMINATION_SAVING);
        assert!(model.scale("GPT-2-L") > 0.0);
    }

    #[test]
    fn pruned_workload_costs_less_than_baseline() {
        let w = workload(3);
        let model = EnergyModel::calibrated();
        let base = head_cost(&w, &TileConfig::baseline(), &model);
        let ae = head_cost(&w, &TileConfig::ae_leopard(), &model);
        assert!(ae.cycles < base.cycles);
        assert!(ae.energy_total() < base.energy_total());
        assert!(ae.energy_delay_product() < base.energy_delay_product());
    }

    #[test]
    fn degradation_ladder_is_monotone_and_cheapens_predictions() {
        // Level 0 is identity; each level halves the surviving rows.
        assert_eq!(degraded_pruning_rate(0.4, 0), 0.4);
        assert!((degraded_pruning_rate(0.4, 1) - 0.7).abs() < 1e-12);
        assert!((degraded_pruning_rate(0.4, 2) - 0.85).abs() < 1e-12);
        assert_eq!(degraded_pruning_rate(1.0, 3), 1.0);
        let mut previous = degraded_pruning_rate(0.2, 0);
        for level in 1..8 {
            let rate = degraded_pruning_rate(0.2, level);
            assert!(rate > previous && rate < 1.0, "monotone, never saturating");
            previous = rate;
        }
        // The tightened rate flows through the cost model as fewer cycles.
        let cfg = TileConfig::ae_leopard();
        let model = CostModel::analytical();
        let full = model.predict_head_cycles("x", &cfg, 96, 0.4);
        let degraded = model.predict_head_cycles("x", &cfg, 96, degraded_pruning_rate(0.4, 1));
        assert!(
            degraded < full,
            "degraded prediction {degraded} must undercut full-service {full}"
        );
    }
}
