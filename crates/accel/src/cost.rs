//! Per-head cost accounting: one simulation priced in cycles, wall-clock
//! time at the tile's clock, and energy.
//!
//! The suite-execution engine (`leopard-runtime`) schedules thousands of
//! per-head simulation jobs and aggregates their costs; this module gives it
//! a single value type that carries everything a scheduler or report needs,
//! computed from a [`HeadSimResult`] without re-running the simulator.
//!
//! The module also pins down the thread-safety contract the engine relies
//! on: workload and result types must be `Send + Sync` so workloads can be
//! shared read-only across worker threads and results can be collected from
//! them. The assertions below make that a compile-time guarantee instead of
//! an accident of field types.

use crate::config::TileConfig;
use crate::energy::{energy_from_events, EnergyBreakdown, EnergyModel};
use crate::sim::{simulate_head, HeadSimResult, HeadWorkload};

/// Compile-time guarantee that the simulator's workload/result types can
/// cross thread boundaries (shared read-only or moved out of workers).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HeadWorkload>();
    assert_send_sync::<HeadSimResult>();
    assert_send_sync::<TileConfig>();
    assert_send_sync::<EnergyModel>();
    assert_send_sync::<EnergyBreakdown>();
    assert_send_sync::<HeadCost>();
};

/// The full cost of simulating one attention head on one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadCost {
    /// Total tile cycles to drain the head.
    pub cycles: u64,
    /// Wall-clock latency implied by the cycle count at the tile's clock,
    /// in microseconds.
    pub latency_us: f64,
    /// Energy breakdown priced by the event-based model.
    pub energy: EnergyBreakdown,
    /// Fraction of scores pruned.
    pub pruning_rate: f64,
    /// Mean K magnitude bits processed per score.
    pub mean_bits: f64,
}

impl HeadCost {
    /// Prices an already-computed simulation result.
    pub fn from_result(result: &HeadSimResult, config: &TileConfig, model: &EnergyModel) -> Self {
        let latency_us = result.total_cycles as f64 / config.frequency_mhz as f64;
        Self {
            cycles: result.total_cycles,
            latency_us,
            energy: energy_from_events(&result.events, config, model),
            pruning_rate: result.pruning_rate(),
            mean_bits: result.mean_bits_processed(),
        }
    }

    /// Total energy across all components (same units as the model).
    pub fn energy_total(&self) -> f64 {
        self.energy.total()
    }

    /// Energy-delay product, the joint figure of merit used when comparing
    /// design points (lower is better).
    pub fn energy_delay_product(&self) -> f64 {
        self.energy.total() * self.latency_us
    }
}

/// Simulates a head and prices it in one call.
///
/// # Panics
///
/// Panics if the configuration is invalid or the workload is degenerate
/// (zero-length sequence) — the same conditions as [`simulate_head`].
pub fn head_cost(workload: &HeadWorkload, config: &TileConfig, model: &EnergyModel) -> HeadCost {
    let result = simulate_head(workload, config);
    HeadCost::from_result(&result, config, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_tensor::rng;

    fn workload(seed: u64) -> HeadWorkload {
        let mut r = rng::seeded(seed);
        let q = rng::normal_matrix(&mut r, 24, 32, 0.0, 1.0);
        let k = rng::normal_matrix(&mut r, 24, 32, 0.0, 1.0);
        HeadWorkload::from_float(&q, &k, 0.2, 12)
    }

    #[test]
    fn cost_matches_underlying_simulation() {
        let w = workload(1);
        let cfg = TileConfig::ae_leopard();
        let model = EnergyModel::calibrated();
        let sim = simulate_head(&w, &cfg);
        let cost = head_cost(&w, &cfg, &model);
        assert_eq!(cost.cycles, sim.total_cycles);
        assert_eq!(cost.energy, energy_from_events(&sim.events, &cfg, &model));
        assert!((cost.pruning_rate - sim.pruning_rate()).abs() < 1e-12);
    }

    #[test]
    fn latency_follows_clock_frequency() {
        let w = workload(2);
        let model = EnergyModel::calibrated();
        let cfg = TileConfig::ae_leopard();
        let cost = head_cost(&w, &cfg, &model);
        let expected = cost.cycles as f64 / cfg.frequency_mhz as f64;
        assert!((cost.latency_us - expected).abs() < 1e-12);
        assert!(cost.latency_us > 0.0);
    }

    #[test]
    fn pruned_workload_costs_less_than_baseline() {
        let w = workload(3);
        let model = EnergyModel::calibrated();
        let base = head_cost(&w, &TileConfig::baseline(), &model);
        let ae = head_cost(&w, &TileConfig::ae_leopard(), &model);
        assert!(ae.cycles < base.cycles);
        assert!(ae.energy_total() < base.energy_total());
        assert!(ae.energy_delay_product() < base.energy_delay_product());
    }
}
