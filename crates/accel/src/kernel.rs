//! The incremental bit-plane QK kernel — the retained v1 per-pair path,
//! kept as a differential oracle and fallback under the batched
//! [`kernel_v2`](crate::kernel_v2) hot path.
//!
//! [`QkDpu::compute`](crate::dpu::QkDpu::compute) re-derives the partial dot
//! product *and* the conservative margin from scratch (two O(d) passes) on
//! every bit-serial cycle of every (Q row, K column) pair, which makes a
//! head simulation O(s²·d·cycles) with ~2× redundant work. [`QkKernel`]
//! computes bit-identical [`DotProductOutcome`]s from the packed
//! [`KPlanes`] layout with three algorithmic changes:
//!
//! 1. **Incremental partial sums.** Cycle `c` adds only the contribution of
//!    its newly revealed bit planes: `Σ_{b ∈ revealed(c)} 2^b · S_b` where
//!    `S_b` is the K-sign-weighted Q sum over plane `b`'s set bits.
//! 2. **Factored margins.** The margin collapses to
//!    `max_remaining_magnitude(c) × Σ_{concordant} |q_i|`; the concordant
//!    sum is computed once per pair in O(d) words, the per-cycle margin is
//!    one multiply.
//! 3. **Row batching.** For one Q row against all `s` K columns, the kernel
//!    pre-tabulates byte-indexed subset sums of the row (`Σ q_i` and
//!    `Σ |q_i|` for every 8-element mask byte), so plane sums and concordant
//!    sums become table lookups — 16 lookups per 64 elements instead of 64
//!    multiplies — amortizing O(d·256) table construction over the row.
//!
//! All arithmetic is exact integer math, so every outcome field (cycles,
//! bits processed, termination, pruning, partial sum) is **bit-identical**
//! to the reference DPU — the differential property tests at the bottom of
//! this file and the `kernel ≡ reference` contract in ARCHITECTURE.md pin
//! that equivalence across all tile presets and bit-serial granularities.
//!
//! Since kernel v2 landed, [`crate::sim::simulate_head`] runs the batched
//! SoA kernel ([`crate::kernel_v2::QkKernelV2`]) instead; this per-pair
//! kernel stays wired through [`crate::sim::simulate_head_pairwise`] as a
//! second oracle between the DPU and v2, and handles the out-of-range
//! Q-row fallback inside v2 itself.

use crate::config::TileConfig;
use crate::dpu::DotProductOutcome;
use leopard_quant::bitserial::BitSerialPlan;
use leopard_quant::planes::KPlanes;

/// Subset-sum tables for one Q row: for every 8-element group `g` and mask
/// byte `m`, `signed[g * 256 + m] = Σ_{j ∈ m} q[8g + j]` and
/// `abs[g * 256 + m] = Σ_{j ∈ m} |q[8g + j]|`. Reused across rows — call
/// [`QkKernel::prepare_row`] to retarget it.
#[derive(Debug, Default, Clone)]
pub struct RowScratch {
    signed: Vec<i64>,
    abs: Vec<i64>,
    /// Bit `i` set when `q[i] > 0` (per 64-element word).
    q_pos: Vec<u64>,
    /// Bit `i` set when `q[i] < 0`.
    q_neg: Vec<u64>,
    len: usize,
}

impl RowScratch {
    /// Creates an empty scratch; sized lazily by the first `prepare_row`.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A precomputed QK kernel for one tile configuration: the bit-serial
/// schedule, the per-cycle remaining-magnitude caps, and the plane-reveal
/// windows, validated once instead of per dot product.
#[derive(Debug, Clone)]
pub struct QkKernel {
    config: TileConfig,
    plan: BitSerialPlan,
    total_cycles: u32,
    /// Fully parallel (baseline) mode: `serial_bits >= k_bits`.
    parallel: bool,
    pruning: bool,
    early_termination: bool,
    /// `max_remaining_magnitude(c)` for `c` in `0..=total_cycles`.
    mrm: Vec<i64>,
    /// Plane indices `[lo, hi)` revealed by cycle `c` (index `c - 1`).
    reveal: Vec<(u32, u32)>,
}

impl QkKernel {
    /// Builds the kernel for a tile configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: TileConfig) -> Self {
        config
            .validate()
            // lint:allow(panic-in-library, reason = "constructor contract documented under # Panics; configs are validated at parse time and invalid ones here are programmer errors")
            .unwrap_or_else(|e| panic!("invalid tile config: {e}"));
        let plan = config.bit_serial_plan();
        let parallel = config.serial_bits >= config.k_bits;
        let total_cycles = if parallel { 1 } else { plan.total_cycles() };
        let mrm = (0..=plan.total_cycles())
            .map(|c| plan.max_remaining_magnitude(c) as i64)
            .collect();
        let reveal = (1..=plan.total_cycles())
            .map(|c| {
                let lo = plan.magnitude_bits - plan.bits_after(c);
                let hi = plan.magnitude_bits - plan.bits_after(c - 1);
                (lo, hi)
            })
            .collect();
        Self {
            config,
            plan,
            total_cycles,
            parallel,
            pruning: config.pruning_enabled,
            early_termination: config.pruning_enabled && config.early_termination,
            mrm,
            reveal,
        }
    }

    /// The tile configuration this kernel follows.
    pub fn config(&self) -> &TileConfig {
        &self.config
    }

    /// The bit-serial schedule K magnitudes follow.
    pub fn plan(&self) -> BitSerialPlan {
        self.plan
    }

    /// Fills `scratch` with the subset-sum tables and sign masks of one Q
    /// row, ready for any number of [`compute_into`](Self::compute_into)
    /// calls against K columns of the same dimension.
    pub fn prepare_row(&self, q_codes: &[i32], scratch: &mut RowScratch) {
        let words = q_codes.len().div_ceil(64).max(1);
        let groups = words * 8;
        scratch.len = q_codes.len();
        scratch.signed.clear();
        scratch.signed.resize(groups * 256, 0);
        scratch.abs.clear();
        scratch.abs.resize(groups * 256, 0);
        scratch.q_pos.clear();
        scratch.q_pos.resize(words, 0);
        scratch.q_neg.clear();
        scratch.q_neg.resize(words, 0);
        for (i, &q) in q_codes.iter().enumerate() {
            if q > 0 {
                scratch.q_pos[i / 64] |= 1 << (i % 64);
            } else if q < 0 {
                scratch.q_neg[i / 64] |= 1 << (i % 64);
            }
        }
        for g in 0..groups {
            let base = g * 8;
            let signed = &mut scratch.signed[g * 256..(g + 1) * 256];
            let abs = &mut scratch.abs[g * 256..(g + 1) * 256];
            for m in 1usize..256 {
                let j = m.trailing_zeros() as usize;
                let rest = m & (m - 1);
                let q = if base + j < q_codes.len() {
                    q_codes[base + j] as i64
                } else {
                    0
                };
                signed[m] = signed[rest] + q;
                abs[m] = abs[rest] + q.abs();
            }
        }
    }

    /// Signed plane sum `S_b` via table lookups: positive-K bytes add their
    /// subset sums, negative-K bytes subtract.
    #[inline]
    fn plane_sum(scratch: &RowScratch, plane: &[u64], sign: &[u64]) -> i64 {
        let mut sum = 0i64;
        for (w, (&p, &s)) in plane.iter().zip(sign.iter()).enumerate() {
            if p == 0 {
                continue;
            }
            let pos = p & !s;
            let neg = p & s;
            let g = w * 8 * 256;
            for byte in 0..8 {
                let table = &scratch.signed[g + byte * 256..g + (byte + 1) * 256];
                sum += table[((pos >> (byte * 8)) & 0xFF) as usize];
                sum -= table[((neg >> (byte * 8)) & 0xFF) as usize];
            }
        }
        sum
    }

    /// The concordant |Q| sum for one pair: `Σ |q_i|` where `q_i != 0`, the
    /// K magnitude is nonzero, and the signs agree.
    #[inline]
    fn concordant_sum(scratch: &RowScratch, k: &KPlanes) -> i64 {
        let mut sum = 0i64;
        for (w, ((&sign, &nonzero), (&q_pos, &q_neg))) in k
            .sign_mask()
            .iter()
            .zip(k.nonzero_mask().iter())
            .zip(scratch.q_pos.iter().zip(scratch.q_neg.iter()))
            .enumerate()
        {
            let concordant = ((sign & q_neg) | (!sign & q_pos)) & nonzero;
            if concordant == 0 {
                continue;
            }
            let g = w * 8 * 256;
            for byte in 0..8 {
                let table = &scratch.abs[g + byte * 256..g + (byte + 1) * 256];
                sum += table[((concordant >> (byte * 8)) & 0xFF) as usize];
            }
        }
        sum
    }

    /// Computes one dot-product outcome against a prepared row.
    ///
    /// # Panics
    ///
    /// Panics if `k`'s length differs from the prepared row's or its
    /// magnitude width differs from the kernel's plan.
    pub fn compute_into(
        &self,
        scratch: &RowScratch,
        k: &KPlanes,
        threshold: i64,
    ) -> DotProductOutcome {
        assert_eq!(k.len(), scratch.len, "Q and K dimension mismatch");
        assert_eq!(
            k.magnitude_bits(),
            self.plan.magnitude_bits,
            "K planes were decomposed for a different magnitude width"
        );

        // Fully parallel (baseline) mode: one cycle, exact result.
        if self.parallel {
            let exact: i64 = (0..self.plan.magnitude_bits)
                .map(|b| Self::plane_sum(scratch, k.plane(b), k.sign_mask()) << b)
                .sum();
            return DotProductOutcome {
                cycles: 1,
                bits_processed: self.plan.magnitude_bits,
                terminated_early: false,
                pruned: self.pruning && exact < threshold,
                partial_sum: exact,
            };
        }

        let concordant = if self.early_termination {
            Self::concordant_sum(scratch, k)
        } else {
            0
        };
        let mut partial = 0i64;
        for cycle in 1..=self.total_cycles {
            let (lo, hi) = self.reveal[(cycle - 1) as usize];
            for b in lo..hi {
                partial += Self::plane_sum(scratch, k.plane(b), k.sign_mask()) << b;
            }
            if self.early_termination {
                let margin = self.mrm[cycle as usize] * concordant;
                if partial + margin < threshold {
                    return DotProductOutcome {
                        cycles: cycle,
                        bits_processed: self.plan.bits_after(cycle),
                        terminated_early: cycle < self.total_cycles,
                        pruned: true,
                        partial_sum: partial,
                    };
                }
            }
            if cycle == self.total_cycles {
                return DotProductOutcome {
                    cycles: self.total_cycles,
                    bits_processed: self.plan.magnitude_bits,
                    terminated_early: false,
                    pruned: self.pruning && partial < threshold,
                    partial_sum: partial,
                };
            }
        }
        unreachable!("loop always returns on the last cycle")
    }

    /// Row-batched outcomes: prepares `q_row` once and computes the outcome
    /// for every K column, appending into `out` (cleared first). `scratch`
    /// and `out` are caller-owned so a head simulation reuses them across
    /// rows instead of reallocating.
    pub fn compute_row_into(
        &self,
        q_row: &[i32],
        keys: &[KPlanes],
        threshold: i64,
        scratch: &mut RowScratch,
        out: &mut Vec<DotProductOutcome>,
    ) {
        self.prepare_row(q_row, scratch);
        out.clear();
        out.reserve(keys.len());
        for k in keys {
            out.push(self.compute_into(scratch, k, threshold));
        }
    }

    /// Row-batched outcomes, allocating the result vector (the convenience
    /// form of [`compute_row_into`](Self::compute_row_into)).
    pub fn compute_row_outcomes(
        &self,
        q_row: &[i32],
        keys: &[KPlanes],
        threshold: i64,
    ) -> Vec<DotProductOutcome> {
        let mut scratch = RowScratch::new();
        let mut out = Vec::new();
        self.compute_row_into(q_row, keys, threshold, &mut scratch, &mut out);
        out
    }

    /// Computes a single dot-product outcome (prepares the row internally;
    /// prefer the row-batched forms in hot loops).
    pub fn compute(&self, q_codes: &[i32], k: &KPlanes, threshold: i64) -> DotProductOutcome {
        let mut scratch = RowScratch::new();
        self.prepare_row(q_codes, &mut scratch);
        self.compute_into(&scratch, k, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::QkDpu;
    use leopard_quant::bitserial::BitSerialVector;
    use leopard_tensor::rng;
    use proptest::prelude::*;

    fn random_codes(n: usize, seed: u64, max: i32) -> Vec<i32> {
        use rand::Rng;
        let mut r = rng::seeded(seed);
        (0..n).map(|_| r.gen_range(-max..=max)).collect()
    }

    /// The four studied tile presets, the set every differential test runs.
    fn presets() -> [TileConfig; 4] {
        [
            TileConfig::baseline(),
            TileConfig::ae_leopard(),
            TileConfig::hp_leopard(),
            TileConfig::pruning_only(),
        ]
    }

    fn assert_kernel_matches_reference(
        config: TileConfig,
        q: &[i32],
        k_codes: &[i32],
        threshold: i64,
    ) {
        let kernel = QkKernel::new(config);
        let dpu = QkDpu::new(config);
        let plan = config.bit_serial_plan();
        let k_vec = BitSerialVector::new(k_codes, plan);
        let k_planes = KPlanes::new(k_codes, plan.magnitude_bits);
        let reference = dpu.compute(q, &k_vec, threshold);
        let fast = kernel.compute(q, &k_planes, threshold);
        assert_eq!(
            fast, reference,
            "kernel diverged from reference on {} (serial_bits {})",
            config.name, config.serial_bits
        );
    }

    #[test]
    fn kernel_matches_reference_on_all_presets() {
        for config in presets() {
            for seed in 0..20u64 {
                let q = random_codes(64, seed, 2047);
                let k = random_codes(64, seed + 500, 2047);
                for threshold in [-100_000, -1_000, 0, 1_000, 100_000] {
                    assert_kernel_matches_reference(config, &q, &k, threshold);
                }
            }
        }
    }

    #[test]
    fn kernel_matches_reference_across_word_boundaries() {
        for d in [1usize, 7, 63, 64, 65, 100, 128, 130] {
            let q = random_codes(d, d as u64, 2047);
            let k = random_codes(d, d as u64 + 999, 2047);
            for config in presets() {
                assert_kernel_matches_reference(config, &q, &k, 0);
            }
        }
    }

    #[test]
    fn row_batched_outcomes_equal_per_pair_outcomes() {
        let config = TileConfig::ae_leopard();
        let kernel = QkKernel::new(config);
        let plan = config.bit_serial_plan();
        let q = random_codes(64, 1, 2047);
        let keys: Vec<KPlanes> = (0..16)
            .map(|j| KPlanes::new(&random_codes(64, 100 + j, 2047), plan.magnitude_bits))
            .collect();
        let batched = kernel.compute_row_outcomes(&q, &keys, 50);
        assert_eq!(batched.len(), keys.len());
        for (j, k) in keys.iter().enumerate() {
            assert_eq!(batched[j], kernel.compute(&q, k, 50));
        }
    }

    #[test]
    fn scratch_reuse_across_rows_is_clean() {
        // A wide row followed by a narrow one must not see stale tables.
        let config = TileConfig::ae_leopard();
        let kernel = QkKernel::new(config);
        let bits = config.bit_serial_plan().magnitude_bits;
        let mut scratch = RowScratch::new();
        let mut out = Vec::new();

        let q_wide = random_codes(100, 3, 2047);
        let keys_wide = vec![KPlanes::new(&random_codes(100, 4, 2047), bits)];
        kernel.compute_row_into(&q_wide, &keys_wide, 0, &mut scratch, &mut out);
        let wide = out.clone();

        let q_narrow = random_codes(8, 5, 2047);
        let keys_narrow = vec![KPlanes::new(&random_codes(8, 6, 2047), bits)];
        kernel.compute_row_into(&q_narrow, &keys_narrow, 0, &mut scratch, &mut out);
        assert_eq!(out[0], kernel.compute(&q_narrow, &keys_narrow[0], 0));

        kernel.compute_row_into(&q_wide, &keys_wide, 0, &mut scratch, &mut out);
        assert_eq!(out, wide, "re-prepared wide row must reproduce itself");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_lengths_panic() {
        let kernel = QkKernel::new(TileConfig::ae_leopard());
        let k = KPlanes::new(&[1, 2, 3], 11);
        let _ = kernel.compute(&[1, 2], &k, 0);
    }

    #[test]
    #[should_panic(expected = "different magnitude width")]
    fn mismatched_magnitude_width_panics() {
        let kernel = QkKernel::new(TileConfig::ae_leopard());
        let k = KPlanes::new(&[1, 2], 5);
        let _ = kernel.compute(&[1, 2], &k, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The differential contract: for random (Q, K, threshold), every
        /// bit-serial granularity in 1..=4, and all four tile presets, the
        /// kernel's outcome equals the reference DPU's outcome exactly —
        /// every field, including cycle counts and partial sums.
        #[test]
        fn prop_kernel_outcome_equals_reference_dpu(
            pairs in proptest::collection::vec((-2047i32..=2047, -2047i32..=2047), 1..80),
            threshold in -200_000i64..200_000,
            bits_per_cycle in 1u32..=4,
            preset in 0u32..4,
        ) {
            let q: Vec<i32> = pairs.iter().map(|p| p.0).collect();
            let k: Vec<i32> = pairs.iter().map(|p| p.1).collect();
            let base = presets()[preset as usize];
            for config in [base, base.with_serial_bits(bits_per_cycle)] {
                let kernel = QkKernel::new(config);
                let dpu = QkDpu::new(config);
                let plan = config.bit_serial_plan();
                let k_vec = BitSerialVector::new(&k, plan);
                let k_planes = KPlanes::new(&k, plan.magnitude_bits);
                prop_assert_eq!(
                    kernel.compute(&q, &k_planes, threshold),
                    dpu.compute(&q, &k_vec, threshold)
                );
            }
        }
    }
}
