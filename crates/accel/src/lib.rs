//! Cycle-level simulator and analytical models of the LeOPArd accelerator.
//!
//! The hardware side of the paper is a tile-based accelerator whose front-end
//! (QK-PU) computes attention scores bit-serially and terminates each dot
//! product as soon as a conservative margin proves the score cannot reach the
//! learned threshold, and whose back-end (V-PU) runs softmax and the `·V`
//! weighted sum only for surviving scores. This crate models that design:
//!
//! * [`config`] — the tile microarchitecture of Table 1 (number of bit-serial
//!   QK-DPUs, operand widths, buffer sizes, clock frequency) with the AE
//!   (6 DPUs, iso-area) and HP (8 DPUs, +15% area) presets and the unpruned
//!   baseline.
//! * [`dpu`] — the bit-serial dot-product unit with dynamic margin
//!   calculation and exact early termination (Figure 3 / Figure 5). This is
//!   the scalar *reference* implementation.
//! * [`kernel`] — the incremental bit-plane QK kernel (v1): row-batched,
//!   table-driven arithmetic over `leopard_quant::planes::KPlanes` that
//!   produces outcomes bit-identical to the reference DPU, several times
//!   faster. Retained as a differential oracle under kernel v2.
//! * [`kernel_v2`] — the batched bit-parallel SoA kernel (the simulator's
//!   hot path): truncated-operand arithmetic over
//!   `leopard_quant::planes::KPlanesSoa` with per-cycle alive-lane `u64`
//!   masks, runtime-dispatched between a wide (`std::arch`-detected) path
//!   and a portable scalar-word fallback, both bit-identical to the
//!   reference DPU.
//! * [`sim`] — the tile simulator: Q rows stream through `N_QK` DPUs, pruned
//!   scores never reach the back-end, surviving scores queue through the
//!   Score/IDX FIFOs to the V-PU; the simulator reports cycle counts, event
//!   counts, V-PU utilization, and bit-profile statistics. Runs on kernel
//!   v2; `sim::simulate_head_pairwise` and `sim::simulate_head_reference`
//!   retain the v1 kernel and DPU paths for differential tests and
//!   benchmarks.
//! * [`baseline`] — the same tile without pruning or bit-serial early
//!   termination (one full-precision dot product per cycle), the comparison
//!   point for Figures 9–11.
//! * [`energy`] — the event-based energy model with per-component energies
//!   calibrated to the paper's baseline breakdown (Figure 11), plus the
//!   pruning-only ablation.
//! * [`area`] — the area model behind Figure 12 and the iso-area argument.
//! * [`compare`] — throughput / energy-efficiency / area-efficiency
//!   comparison against A³ and SpAtten with technology and bit-width scaling
//!   (Table 2).
//! * [`cost`] — per-head cost accounting (cycles, latency, energy) for the
//!   suite-execution engine, plus the compile-time `Send + Sync` guarantees
//!   parallel execution relies on.
//!
//! # Example
//!
//! ```
//! use leopard_accel::config::TileConfig;
//! use leopard_accel::sim::{simulate_head, HeadWorkload};
//! use leopard_tensor::rng;
//!
//! let mut r = rng::seeded(1);
//! let q = rng::normal_matrix(&mut r, 16, 16, 0.0, 1.0);
//! let k = rng::normal_matrix(&mut r, 16, 16, 0.0, 1.0);
//! let workload = HeadWorkload::from_float(&q, &k, 0.0, 12);
//! let result = simulate_head(&workload, &TileConfig::ae_leopard());
//! assert!(result.total_cycles > 0);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod area;
pub mod baseline;
pub mod compare;
pub mod config;
pub mod cost;
pub mod dpu;
pub mod energy;
pub mod kernel;
pub mod kernel_v2;
pub mod schedule;
pub mod sim;
pub mod softmax;

pub use config::TileConfig;
pub use cost::{head_cost, HeadCost};
pub use dpu::{DotProductOutcome, QkDpu};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use kernel::{QkKernel, RowScratch};
pub use kernel_v2::{KernelPath, PackedKeys, QkKernelV2, RowScratchV2};
pub use schedule::{schedule_layer, schedule_model, LayerSchedule, ModelSchedule, Placement};
pub use sim::{simulate_head, simulate_head_reference, HeadSimResult, HeadWorkload};
pub use softmax::{SoftmaxLut, SoftmaxLutConfig};
