//! LUT-based softmax unit of the back-end V-PU.
//!
//! The paper implements the V-PU's softmax the same way A³ does: a look-up
//! table of the exponential function indexed by the quantized score (Table 1
//! lists a 1 KB LUT with 24-bit inputs and 16-bit outputs). This module
//! models that unit: scores are shifted by the row maximum (the standard
//! stability trick, free in hardware because the front-end already knows the
//! largest surviving score), the shifted value indexes a `2^index_bits`-entry
//! table of `exp(x)` over a bounded negative range, and the probabilities are
//! the table outputs normalized by their (fixed-point) sum.

use serde::{Deserialize, Serialize};

/// Configuration of the LUT-based exponential/softmax unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxLutConfig {
    /// Number of index bits (the paper's 1 KB LUT with 16-bit entries has
    /// 512 entries, i.e. 9 index bits).
    pub index_bits: u32,
    /// Output fractional bits of the stored exponentials (16-bit entries).
    pub output_bits: u32,
    /// Most negative shifted score representable; anything below maps to the
    /// last LUT entry (effectively zero probability).
    pub min_input: f32,
}

impl Default for SoftmaxLutConfig {
    fn default() -> Self {
        Self {
            index_bits: 9,
            output_bits: 16,
            min_input: -12.0,
        }
    }
}

/// A quantized exponential look-up table plus the softmax evaluation built on
/// top of it.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxLut {
    config: SoftmaxLutConfig,
    /// Fixed-point `exp(x)` values for x in `[min_input, 0]`.
    entries: Vec<u32>,
}

impl SoftmaxLut {
    /// Builds the table for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no entries, non-negative
    /// `min_input`, or zero output bits).
    pub fn new(config: SoftmaxLutConfig) -> Self {
        assert!(
            config.index_bits >= 2 && config.index_bits <= 16,
            "index bits in 2..=16"
        );
        assert!(
            config.output_bits >= 4 && config.output_bits <= 24,
            "output bits in 4..=24"
        );
        assert!(config.min_input < 0.0, "min_input must be negative");
        let entries_count = 1usize << config.index_bits;
        let scale = ((1u64 << config.output_bits) - 1) as f32;
        let entries = (0..entries_count)
            .map(|i| {
                // Entry 0 corresponds to a shifted score of 0 (probability
                // weight 1.0); the last entry corresponds to `min_input`.
                let x = config.min_input * i as f32 / (entries_count - 1) as f32;
                (x.exp() * scale).round() as u32
            })
            .collect();
        Self { config, entries }
    }

    /// The configuration the table was built for.
    pub fn config(&self) -> SoftmaxLutConfig {
        self.config
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Table size in bytes (16-bit entries are stored in two bytes each, as
    /// in the paper's 1 KB figure for 512 entries).
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * (self.config.output_bits as usize).div_ceil(8)
    }

    /// Looks up the fixed-point exponential of a *shifted* (non-positive)
    /// score.
    pub fn exp_fixed(&self, shifted_score: f32) -> u32 {
        if shifted_score >= 0.0 {
            return self.entries[0];
        }
        if shifted_score <= self.config.min_input {
            return *self.entries.last().expect("table is never empty"); // lint:allow(panic-in-library, reason = "the constructor always materializes at least one table entry")
        }
        let frac = shifted_score / self.config.min_input; // in (0, 1)
        let idx = (frac * (self.entries.len() - 1) as f32).round() as usize;
        self.entries[idx.min(self.entries.len() - 1)]
    }

    /// Computes softmax probabilities for a slice of surviving scores using
    /// only LUT lookups and integer accumulation, mirroring the hardware.
    /// Returns an empty vector for empty input.
    pub fn softmax(&self, scores: &[f32]) -> Vec<f32> {
        if scores.is_empty() {
            return Vec::new();
        }
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let weights: Vec<u64> = scores
            .iter()
            .map(|&s| u64::from(self.exp_fixed(s - max)))
            .collect();
        let total: u64 = weights.iter().sum();
        if total == 0 {
            return vec![1.0 / scores.len() as f32; scores.len()];
        }
        weights.iter().map(|&w| w as f32 / total as f32).collect()
    }

    /// Maximum absolute probability error of the LUT softmax against the
    /// exact float softmax for a given score slice.
    pub fn max_error(&self, scores: &[f32]) -> f32 {
        let approx = self.softmax(scores);
        let exact = leopard_tensor::ops::softmax(scores);
        approx
            .iter()
            .zip(exact.iter())
            .map(|(a, e)| (a - e).abs())
            .fold(0.0, f32::max)
    }
}

impl Default for SoftmaxLut {
    fn default() -> Self {
        Self::new(SoftmaxLutConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_tensor::rng;
    use proptest::prelude::*;
    use rand::Rng;

    #[test]
    fn table_size_matches_table1() {
        // 512 entries x 16 bits = 1 KB, as listed in Table 1.
        let lut = SoftmaxLut::default();
        assert_eq!(lut.entries(), 512);
        assert_eq!(lut.size_bytes(), 1024);
    }

    #[test]
    fn exponential_endpoints() {
        let lut = SoftmaxLut::default();
        let scale = ((1u64 << 16) - 1) as f32;
        assert_eq!(lut.exp_fixed(0.0), scale as u32);
        assert!(lut.exp_fixed(-100.0) <= 1);
        // Midpoint is within quantization error of the true exponential.
        let x = -3.0f32;
        let approx = lut.exp_fixed(x) as f32 / scale;
        assert!((approx - x.exp()).abs() < 0.01);
    }

    #[test]
    fn lut_softmax_tracks_exact_softmax() {
        let lut = SoftmaxLut::default();
        let mut r = rng::seeded(3);
        for _ in 0..20 {
            let n = r.gen_range(2..32);
            let scores: Vec<f32> = (0..n).map(|_| r.gen_range(-4.0..4.0)).collect();
            let err = lut.max_error(&scores);
            assert!(err < 0.01, "LUT softmax error {err} too large");
            let sum: f32 = lut.softmax(&scores).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let lut = SoftmaxLut::default();
        assert!(lut.softmax(&[]).is_empty());
        let uniform = lut.softmax(&[-1e9, -1e9]);
        assert!((uniform[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn coarser_tables_are_less_accurate() {
        let fine = SoftmaxLut::new(SoftmaxLutConfig::default());
        let coarse = SoftmaxLut::new(SoftmaxLutConfig {
            index_bits: 4,
            ..SoftmaxLutConfig::default()
        });
        let scores = [0.3f32, -1.2, 2.0, 0.8, -0.4];
        assert!(coarse.max_error(&scores) >= fine.max_error(&scores));
    }

    #[test]
    #[should_panic(expected = "min_input must be negative")]
    fn invalid_config_panics() {
        let _ = SoftmaxLut::new(SoftmaxLutConfig {
            min_input: 1.0,
            ..SoftmaxLutConfig::default()
        });
    }

    proptest! {
        #[test]
        fn prop_probabilities_sum_to_one(
            scores in proptest::collection::vec(-6.0f32..6.0, 1..64),
        ) {
            let lut = SoftmaxLut::default();
            let p = lut.softmax(&scores);
            let sum: f32 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }
}
