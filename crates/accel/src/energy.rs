//! Event-based energy model.
//!
//! The paper's energy numbers come from post-layout power characterization in
//! a 65 nm process; this reproduction replaces that with an event-count model:
//! each microarchitectural event (a DPU cycle, a key-buffer read, a softmax
//! evaluation, a 64-wide `·V` MAC, a value-buffer row read) costs a fixed
//! per-event energy, and total energy is the weighted sum of the simulator's
//! event counts. The per-event constants are calibrated so the *baseline*
//! design's energy breakdown matches the shares reported in Figure 11
//! (`Q·Kᵀ` compute ≈ 17%, key memory ≈ 17%, softmax ≈ 14%, `·V` compute ≈
//! 30%, value memory ≈ 22%), which is what makes the relative savings —
//! the numbers the paper actually reports — meaningful.

use crate::config::TileConfig;
use crate::sim::EventCounts;
use serde::{Deserialize, Serialize};

/// Energy cost of each microarchitectural event, in arbitrary consistent
/// units (picojoule-like).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One cycle of a full-precision 12x12-bit, 64-tap DPU (baseline front end).
    pub full_dpu_cycle: f64,
    /// One cycle of a 12xB-bit bit-serial, 64-tap DPU.
    pub serial_dpu_cycle: f64,
    /// Extra energy charged per bit-serial cycle for latching intermediate
    /// partial sums (the cost that makes very small `B` unattractive in the
    /// Figure 14 sweep).
    pub serial_latch_overhead: f64,
    /// One key-buffer access (per DPU cycle, streaming B bits x 64 elements).
    pub key_buffer_read: f64,
    /// One key-buffer access of a full-precision row (baseline).
    pub key_buffer_read_full: f64,
    /// One LUT-based softmax evaluation.
    pub softmax_op: f64,
    /// One 64-wide 16x16-bit `·V` MAC operation.
    pub v_mac_op: f64,
    /// One value-buffer row read.
    pub value_buffer_read: f64,
    /// One Score/IDX FIFO push.
    pub fifo_push: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl EnergyModel {
    /// The calibrated model: constants chosen so the baseline breakdown over
    /// a dense attention head reproduces the Figure 11 baseline shares.
    ///
    /// Derivation sketch (per `s x s` score tile, baseline): every score costs
    /// one full DPU cycle + one full key read in the front-end, and one
    /// softmax + one `·V` MAC + one value read in the back-end, so the five
    /// component shares are directly proportional to the five constants
    /// below.
    pub fn calibrated() -> Self {
        Self {
            // Figure 11 baseline shares: QK 17.3%, Kmem 16.7%, softmax 14.1%,
            // V compute 29.6%, V mem 22.3% (of one head's total energy).
            full_dpu_cycle: 17.3,
            // One bit-serial cycle processes B of the 12 K bits, so a full
            // 6-cycle serial dot product costs slightly more than the fully
            // parallel one (extra sequencing/latching), matching the paper's
            // observation that bit-serial only pays off through termination.
            serial_dpu_cycle: 17.3 / 6.0,
            serial_latch_overhead: 1.0,
            key_buffer_read: 16.7 / 6.0,
            key_buffer_read_full: 16.7,
            softmax_op: 14.1,
            v_mac_op: 29.6,
            value_buffer_read: 22.3,
            fifo_push: 0.05,
        }
    }

    /// Energy of one front-end DPU cycle under `config` (full precision for
    /// the baseline, bit-serial otherwise).
    pub fn dpu_cycle_energy(&self, config: &TileConfig) -> f64 {
        if config.serial_bits >= config.k_bits {
            self.full_dpu_cycle
        } else {
            // Scale with the number of K bits consumed per cycle, plus the
            // per-cycle latch overhead that penalizes fine granularities.
            let fraction = config.serial_bits as f64 / config.k_bits as f64;
            self.full_dpu_cycle * fraction + self.serial_latch_overhead
        }
    }

    /// Energy of one key-buffer access under `config`.
    pub fn key_read_energy(&self, config: &TileConfig) -> f64 {
        if config.serial_bits >= config.k_bits {
            self.key_buffer_read_full
        } else {
            self.key_buffer_read_full * config.serial_bits as f64 / config.k_bits as f64
        }
    }
}

/// Energy broken down into the five components of Figure 11.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// `Q·Kᵀ` compute energy.
    pub qk_compute: f64,
    /// Key-buffer access energy.
    pub key_memory: f64,
    /// Softmax energy.
    pub softmax: f64,
    /// `·V` compute energy.
    pub v_compute: f64,
    /// Value-buffer access energy.
    pub value_memory: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.qk_compute + self.key_memory + self.softmax + self.v_compute + self.value_memory
    }

    /// The five components as `(label, energy)` pairs in Figure 11 order.
    pub fn components(&self) -> [(&'static str, f64); 5] {
        [
            ("QxK compute", self.qk_compute),
            ("Key memory", self.key_memory),
            ("Softmax", self.softmax),
            ("xV compute", self.v_compute),
            ("Value memory", self.value_memory),
        ]
    }

    /// Shares of each component relative to the total (sums to 1 unless the
    /// total is zero).
    pub fn shares(&self) -> [f64; 5] {
        let total = self.total();
        if total <= 0.0 {
            return [0.0; 5];
        }
        [
            self.qk_compute / total,
            self.key_memory / total,
            self.softmax / total,
            self.v_compute / total,
            self.value_memory / total,
        ]
    }

    /// Scales every component by `factor` (used for normalization).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            qk_compute: self.qk_compute * factor,
            key_memory: self.key_memory * factor,
            softmax: self.softmax * factor,
            v_compute: self.v_compute * factor,
            value_memory: self.value_memory * factor,
        }
    }
}

/// Computes the energy breakdown of a simulated head from its event counts.
pub fn energy_from_events(
    events: &EventCounts,
    config: &TileConfig,
    model: &EnergyModel,
) -> EnergyBreakdown {
    EnergyBreakdown {
        qk_compute: events.qk_dpu_cycles as f64 * model.dpu_cycle_energy(config),
        key_memory: events.key_buffer_reads as f64 * model.key_read_energy(config),
        softmax: events.softmax_ops as f64 * model.softmax_op
            + events.fifo_pushes as f64 * model.fifo_push,
        v_compute: events.v_mac_ops as f64 * model.v_mac_op,
        value_memory: events.value_buffer_reads as f64 * model.value_buffer_read,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate_head, HeadWorkload};
    use leopard_tensor::rng;

    fn workload(s: usize, d: usize, threshold: f32, seed: u64) -> HeadWorkload {
        let mut r = rng::seeded(seed);
        let q = rng::normal_matrix(&mut r, s, d, 0.0, 1.0);
        let k = rng::normal_matrix(&mut r, s, d, 0.0, 1.0);
        HeadWorkload::from_float(&q, &k, threshold, 12)
    }

    #[test]
    fn baseline_breakdown_matches_figure11_shares() {
        let w = workload(32, 64, 0.0, 1);
        let cfg = TileConfig::baseline();
        let result = simulate_head(&w, &cfg);
        let breakdown = energy_from_events(&result.events, &cfg, &EnergyModel::calibrated());
        let shares = breakdown.shares();
        let expected = [0.173, 0.167, 0.141, 0.296, 0.223];
        for (i, (&share, &target)) in shares.iter().zip(expected.iter()).enumerate() {
            assert!(
                (share - target).abs() < 0.02,
                "component {i}: share {share} vs Figure 11 target {target}"
            );
        }
    }

    #[test]
    fn pruning_reduces_backend_energy() {
        let w = workload(32, 64, 0.4, 2);
        let model = EnergyModel::calibrated();
        let base_cfg = TileConfig::baseline();
        let prune_cfg = TileConfig::pruning_only();
        let base = energy_from_events(&simulate_head(&w, &base_cfg).events, &base_cfg, &model);
        let pruned = energy_from_events(&simulate_head(&w, &prune_cfg).events, &prune_cfg, &model);
        assert!(pruned.v_compute < base.v_compute * 0.7);
        assert!(pruned.value_memory < base.value_memory * 0.7);
        assert!(pruned.softmax < base.softmax * 0.7);
        assert!(pruned.total() < base.total());
    }

    #[test]
    fn bit_serial_early_termination_reduces_frontend_energy_further() {
        let w = workload(32, 64, 0.4, 3);
        let model = EnergyModel::calibrated();
        let prune_cfg = TileConfig::pruning_only();
        let full_cfg = TileConfig::ae_leopard();
        let pruned = energy_from_events(&simulate_head(&w, &prune_cfg).events, &prune_cfg, &model);
        let full = energy_from_events(&simulate_head(&w, &full_cfg).events, &full_cfg, &model);
        assert!(
            full.qk_compute < pruned.qk_compute,
            "bit-serial termination should cut QK energy: {} vs {}",
            full.qk_compute,
            pruned.qk_compute
        );
        assert!(full.key_memory < pruned.key_memory);
        // Back-end energy is unchanged (same survivors).
        assert!((full.v_compute - pruned.v_compute).abs() < 1e-9);
    }

    #[test]
    fn breakdown_helpers_are_consistent() {
        let b = EnergyBreakdown {
            qk_compute: 1.0,
            key_memory: 2.0,
            softmax: 3.0,
            v_compute: 4.0,
            value_memory: 10.0,
        };
        assert_eq!(b.total(), 20.0);
        let shares = b.shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(b.components()[4].0, "Value memory");
        assert_eq!(b.scaled(0.5).total(), 10.0);
        assert_eq!(EnergyBreakdown::default().shares(), [0.0; 5]);
    }

    #[test]
    fn serial_energy_per_cycle_is_cheaper_than_full() {
        let model = EnergyModel::calibrated();
        let ae = TileConfig::ae_leopard();
        let base = TileConfig::baseline();
        assert!(model.dpu_cycle_energy(&ae) < model.dpu_cycle_energy(&base));
        assert!(model.key_read_energy(&ae) < model.key_read_energy(&base));
    }

    #[test]
    fn finer_granularity_costs_more_per_full_dot_product() {
        // Figure 14: at equal (no-termination) work, 1-bit serial costs more
        // than 2-bit serial because of per-cycle latch overhead.
        let model = EnergyModel::calibrated();
        let one_bit = TileConfig::ae_leopard().with_serial_bits(1);
        let two_bit = TileConfig::ae_leopard().with_serial_bits(2);
        let cost = |cfg: &TileConfig| {
            cfg.full_dot_cycles() as f64
                * (model.dpu_cycle_energy(cfg) + model.key_read_energy(cfg))
        };
        assert!(cost(&one_bit) > cost(&two_bit));
    }
}
