//! Multi-head / multi-tile scheduling (Section 4.1).
//!
//! A LeOPArd accelerator instantiates several tiles and "attention heads are
//! partitioned across the tiles, and the operations in the tiles are
//! independent of each other on their corresponding heads". This module
//! models that level — and, since the tile-scheduler PR, the level *below*
//! it: [`TilePartition`] deterministically splits one head's Q rows across
//! the tiles, [`simulate_head_tiled`] runs the shards and
//! [`merge_head_shards`] reassembles them into a [`TiledHeadSim`] whose
//! merged accounting is bit-identical to single-tile execution (counters
//! sum, timing reconstructs exactly; the per-tile makespan is the parallel
//! latency).
//!
//! Above that sits the layer scheduler: [`plan_layer`] assigns heads→tiles
//! with the per-head tile split chosen by **predicted** load (the
//! [`CostModel`] tiled predictor is the objective — no simulation runs
//! before a placement is decided), under one of three [`Placement`]
//! policies: greedy LPT, round-robin, or the paper's static whole-head
//! partition. [`schedule_layer`] executes a plan and reports the layer's
//! makespan, total energy, and per-tile utilization; a model-level helper
//! then sums layers.
//!
//! The conformance contract (pinned by `tests/layer_conformance.rs`):
//! placement decides **only the makespan**. Per-head merged accounting,
//! layer energy, and pruning rates are bit-identical across every policy
//! and tile count, because each head's shards always reassemble through
//! [`merge_head_shards`] and the float aggregation follows the plan's
//! canonical (content-ordered) head order rather than enumeration order.

use crate::config::TileConfig;
use crate::cost::CostModel;
use crate::energy::{energy_from_events, EnergyBreakdown, EnergyModel};
use crate::sim::{merge_shards, simulate_head_shard, HeadSimResult, HeadWorkload, TileShardSim};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Deterministic contiguous partition of a head's `seq_len` Q rows across
/// `tiles` tiles: the first `seq_len % tiles` tiles receive one extra row,
/// so shard sizes differ by at most one and the mapping is a pure function
/// of `(seq_len, tiles)` — the property the engine's bit-identity across
/// thread counts rests on. Tiles beyond the row count receive empty ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePartition {
    seq_len: usize,
    tiles: usize,
}

impl TilePartition {
    /// Partitions `seq_len` rows over `tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn new(seq_len: usize, tiles: usize) -> Self {
        assert!(tiles > 0, "a partition needs at least one tile");
        Self { seq_len, tiles }
    }

    /// Number of tiles in the partition.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Number of rows being partitioned.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// The contiguous row range assigned to `tile` (possibly empty).
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn range(&self, tile: usize) -> Range<usize> {
        assert!(tile < self.tiles, "tile {tile} of {}", self.tiles);
        let base = self.seq_len / self.tiles;
        let extra = self.seq_len % self.tiles;
        let start = tile * base + tile.min(extra);
        let len = base + usize::from(tile < extra);
        start..start + len
    }

    /// All row ranges, in tile order (their concatenation is `0..seq_len`).
    pub fn ranges(&self) -> Vec<Range<usize>> {
        (0..self.tiles).map(|tile| self.range(tile)).collect()
    }
}

/// Result of simulating one attention head partitioned across the tiles of
/// an accelerator: the per-tile pipeline cycles (each shard running alone
/// on its tile), and the merged single-tile-exact [`HeadSimResult`].
///
/// The determinism/merge contract: `merged` is **bit-identical** to
/// [`simulate_head`](crate::sim::simulate_head) /
/// [`crate::sim::simulate_head_reference`] on the same
/// workload, for every tile count — counters and histograms are sums over
/// tiles, and the timing fields are reconstructed exactly from the shard
/// boundary terms (see [`crate::sim::merge_shards`]). What the tile count
/// *does* change is [`makespan_cycles`](Self::makespan_cycles): the
/// busiest tile's cycles, i.e. the latency of the head when the tiles run
/// in parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledHeadSim {
    /// Number of tiles the head was partitioned across.
    pub tiles: usize,
    /// Per-tile standalone pipeline cycles (0 for tiles without rows) —
    /// "cycles = max over tiles" is taken over this vector.
    pub tile_cycles: Vec<u64>,
    /// The merged accounting: bit-identical to single-tile execution.
    pub merged: HeadSimResult,
}

impl TiledHeadSim {
    /// Multi-tile latency of the head: the busiest tile's cycles (at least
    /// 1, mirroring [`HeadSimResult::total_cycles`]).
    pub fn makespan_cycles(&self) -> u64 {
        self.tile_cycles.iter().copied().max().unwrap_or(0).max(1)
    }

    /// Cycle-level speedup of the tile-parallel execution over single-tile
    /// execution of the same head (1.0 at one tile).
    pub fn tile_speedup(&self) -> f64 {
        self.merged.total_cycles as f64 / self.makespan_cycles() as f64
    }

    /// Load-balance efficiency: mean tile cycles over the makespan (1.0
    /// means perfectly balanced; includes row-less tiles, so over-tiling
    /// shows up as imbalance).
    pub fn balance(&self) -> f64 {
        if self.tile_cycles.is_empty() {
            return 1.0;
        }
        let mean = self.tile_cycles.iter().sum::<u64>() as f64 / self.tile_cycles.len() as f64;
        mean / self.makespan_cycles() as f64
    }
}

/// Assembles a [`TiledHeadSim`] from independently-simulated shards, one
/// per tile in tile order. This is the merge the runtime engine calls after
/// its shard jobs complete; [`simulate_head_tiled`] is the serial
/// reference for it.
///
/// # Panics
///
/// Panics if `shards` is not one-per-tile, covers no rows, or is not
/// contiguous in tile order (see [`crate::sim::merge_shards`]).
pub fn merge_head_shards(tiles: usize, shards: &[TileShardSim]) -> TiledHeadSim {
    assert_eq!(shards.len(), tiles, "one shard per tile");
    TiledHeadSim {
        tiles,
        tile_cycles: shards.iter().map(TileShardSim::standalone_cycles).collect(),
        merged: merge_shards(shards),
    }
}

/// Simulates one head with its Q rows partitioned across `tiles` tiles
/// (each tile still sees every K column), serially shard-by-shard. The
/// runtime engine executes the same shards as parallel sub-DAG jobs and
/// merges them with [`merge_head_shards`]; results are identical by
/// construction.
///
/// # Panics
///
/// Panics if the configuration is invalid, the workload is degenerate
/// (zero-length sequence), or `tiles` is zero.
pub fn simulate_head_tiled(
    workload: &HeadWorkload,
    config: &TileConfig,
    tiles: usize,
) -> TiledHeadSim {
    assert!(
        workload.seq_len() > 0,
        "workload must contain at least one query"
    );
    let partition = TilePartition::new(workload.seq_len(), tiles);
    let shards: Vec<TileShardSim> = partition
        .ranges()
        .into_iter()
        .map(|rows| simulate_head_shard(workload, config, rows))
        .collect();
    merge_head_shards(tiles, &shards)
}

/// Head→tile placement policy of the layer scheduler.
///
/// Placement decides *where* head shards run and therefore the layer
/// **makespan** — and nothing else: merged per-head accounting, layer
/// energy, and pruning rates are bit-identical across policies (the
/// conformance contract of `tests/layer_conformance.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Placement {
    /// Greedy longest-predicted-first: heads in descending predicted load,
    /// each shard onto the currently least-loaded tile, with a round-robin
    /// fallback when the greedy layout predicts a longer makespan — so LPT
    /// never predicts worse than [`Placement::RoundRobin`] (a guarantee,
    /// pinned by proptest, not a heuristic hope).
    #[default]
    Lpt,
    /// Round-robin: shards cycle over the tiles in canonical
    /// (heaviest-first) head order.
    RoundRobin,
    /// The paper's static partition: whole heads (never split), head rank
    /// `r` on tile `r % tiles`. Over-tiled layers leave tiles idle.
    Static,
}

impl Placement {
    /// Every placement policy, in ablation order.
    pub const ALL: [Placement; 3] = [Placement::Lpt, Placement::RoundRobin, Placement::Static];

    /// Stable CLI/report label.
    pub fn label(&self) -> &'static str {
        match self {
            Placement::Lpt => "lpt",
            Placement::RoundRobin => "rr",
            Placement::Static => "static",
        }
    }

    /// The policy's position in [`Placement::ALL`] (the ablation order —
    /// sweep grids carry policies as these indices).
    pub fn index(&self) -> usize {
        match self {
            Placement::Lpt => 0,
            Placement::RoundRobin => 1,
            Placement::Static => 2,
        }
    }

    /// Parses a CLI label (`lpt`, `rr`/`round-robin`, `static`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted labels on unknown input.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.to_ascii_lowercase().as_str() {
            "lpt" | "greedy" => Ok(Placement::Lpt),
            "rr" | "round-robin" | "roundrobin" => Ok(Placement::RoundRobin),
            "static" => Ok(Placement::Static),
            other => Err(format!(
                "unknown placement {other:?} (expected lpt, rr, or static)"
            )),
        }
    }
}

/// The planner's view of one head: enough metadata to predict its load
/// without building (or simulating) its workload — serving plans requests
/// it has not executed yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedHead {
    /// Sequence length (Q rows) of the head.
    pub seq_len: usize,
    /// Deterministic tie-break key. When two heads predict the same load at
    /// the same sequence length the planner orders them by this key;
    /// callers that need placement invariant under head *enumeration*
    /// order must derive it from head content (see
    /// [`workload_fingerprint`]) so that equal keys imply interchangeable
    /// heads.
    pub tie_break: u64,
}

/// A layer placement: which tiles each head's shards run on. Produced by
/// [`plan_layer`] from predictions only; executed by [`schedule_layer`]
/// (serially) and by the runtime engine (as pool sub-DAG jobs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerPlan {
    /// Number of physical tiles planned over.
    pub tiles: usize,
    /// The policy that produced the plan.
    pub placement: Placement,
    /// Per input head, the distinct tiles its shards run on: shard `i` of
    /// the head's [`TilePartition`] runs on `shard_tiles[head][i]`, and the
    /// vector's length is the head's tile split.
    pub shard_tiles: Vec<Vec<usize>>,
    /// Input head indices in canonical planning order: descending predicted
    /// load, ties broken by descending `seq_len` then ascending
    /// [`PlannedHead::tie_break`]. Aggregation that must be
    /// enumeration-order-invariant folds in this order.
    pub canonical: Vec<usize>,
    /// Predicted busy cycles per tile under the plan.
    pub predicted_tile_cycles: Vec<u64>,
}

impl LayerPlan {
    /// The tile split of `head` (how many tiles its rows are partitioned
    /// across).
    ///
    /// # Panics
    ///
    /// Panics if `head` is out of range.
    pub fn split(&self, head: usize) -> usize {
        self.shard_tiles[head].len()
    }

    /// Predicted layer makespan: the busiest tile's predicted cycles (at
    /// least 1, mirroring the simulator's cycle floor).
    pub fn predicted_makespan_cycles(&self) -> u64 {
        self.predicted_tile_cycles
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(1)
    }
}

/// Deterministic FNV-1a fingerprint of a head workload's content — the
/// [`PlannedHead::tie_break`] key [`schedule_layer`] uses, which makes its
/// placement a pure function of the *multiset* of head workloads: shuffling
/// the heads of a layer never changes the plan, because heads that collide
/// on `(predicted load, seq_len, fingerprint)` carry identical content and
/// are therefore interchangeable.
pub fn workload_fingerprint(workload: &HeadWorkload) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn mix(hash: u64, value: u64) -> u64 {
        (hash ^ value).wrapping_mul(PRIME)
    }
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    hash = mix(hash, workload.seq_len() as u64);
    hash = mix(hash, workload.head_dim as u64);
    hash = mix(hash, workload.threshold_int as u64);
    for row in workload.q_codes.iter().chain(workload.k_codes.iter()) {
        for &code in row {
            hash = mix(hash, code as u64);
        }
    }
    hash
}

/// Plans one layer's head→tile placement from **predicted** load only.
///
/// `predict(seq_len, tiles)` must be a pure function returning the
/// predicted per-tile cycles of a head of `seq_len` rows split across
/// `tiles` tiles — [`CostModel::predict_head_cycles_tiled`] partially
/// applied is the intended argument. The plan is then a pure function of
/// the head multiset, the tile count, and the policy: deterministic, and
/// invariant under head enumeration order (given content-derived
/// [`PlannedHead::tie_break`] keys).
///
/// The per-head tile split is chosen by predicted load: heads stay whole
/// while `heads >= tiles` (the paper's static-partition regime), and when
/// tiles would otherwise idle (`heads < tiles`) each spare tile goes to the
/// head whose predicted per-tile cycles are currently largest — the
/// critical path shrinks first. [`Placement::Static`] never splits.
///
/// # Panics
///
/// Panics if `heads` is empty or `tiles` is zero.
pub fn plan_layer(
    heads: &[PlannedHead],
    tiles: usize,
    placement: Placement,
    predict: impl Fn(usize, usize) -> u64,
) -> LayerPlan {
    assert!(!heads.is_empty(), "a layer has at least one attention head");
    assert!(tiles > 0, "a plan needs at least one tile");
    // Canonical order: descending predicted single-tile load, ties by
    // descending seq_len then ascending tie_break — a function of head
    // content, never of enumeration order.
    let loads: Vec<u64> = heads.iter().map(|h| predict(h.seq_len, 1)).collect();
    let mut canonical: Vec<usize> = (0..heads.len()).collect();
    canonical.sort_by(|&a, &b| {
        loads[b]
            .cmp(&loads[a])
            .then(heads[b].seq_len.cmp(&heads[a].seq_len))
            .then(heads[a].tie_break.cmp(&heads[b].tie_break))
    });

    let mut splits = vec![1usize; heads.len()];
    if placement != Placement::Static && heads.len() < tiles {
        for _ in 0..tiles - heads.len() {
            // Widen the head whose predicted per-tile cycles are largest at
            // its current split; ties resolve toward the earlier canonical
            // rank (strict-greater scan, so the choice is deterministic).
            let mut widest = canonical[0];
            let mut worst = predict(heads[widest].seq_len, splits[widest]);
            for &h in &canonical[1..] {
                let load = predict(heads[h].seq_len, splits[h]);
                if load > worst {
                    widest = h;
                    worst = load;
                }
            }
            splits[widest] += 1;
        }
    }
    debug_assert!(splits.iter().all(|&s| s <= tiles));

    let shard_tiles = match placement {
        Placement::Static => {
            let mut shard_tiles = vec![Vec::new(); heads.len()];
            for (rank, &h) in canonical.iter().enumerate() {
                shard_tiles[h] = vec![rank % tiles];
            }
            shard_tiles
        }
        Placement::RoundRobin => round_robin_assignment(&canonical, &splits, tiles),
        Placement::Lpt => {
            let greedy = lpt_assignment(heads, &canonical, &splits, tiles, &predict);
            // Greedy list scheduling is a heuristic; when the round-robin
            // layout of the same splits predicts a shorter makespan, take
            // it. The fallback turns "LPT never predicts a longer makespan
            // than round-robin" from a conjecture into a guarantee (pinned
            // by proptest in tests/cost_props.rs).
            let rr = round_robin_assignment(&canonical, &splits, tiles);
            let greedy_makespan = predicted_cycles_of(heads, &greedy, tiles, &predict)
                .into_iter()
                .max()
                .unwrap_or(0);
            let rr_makespan = predicted_cycles_of(heads, &rr, tiles, &predict)
                .into_iter()
                .max()
                .unwrap_or(0);
            if greedy_makespan <= rr_makespan {
                greedy
            } else {
                rr
            }
        }
    };
    let predicted_tile_cycles = predicted_cycles_of(heads, &shard_tiles, tiles, &predict);
    LayerPlan {
        tiles,
        placement,
        shard_tiles,
        canonical,
        predicted_tile_cycles,
    }
}

/// [`plan_layer`] over a *live subset* of a larger tile array — the
/// topology-aware planning path fault-tolerant serving uses when tiles
/// have failed.
///
/// `live_tiles` lists the physical tile ids still accepting work, in
/// ascending order. The plan is computed over `live_tiles.len()` slots
/// exactly as [`plan_layer`] would (same canonical order, same splits,
/// same placement decisions, same predicted slot cycles), then each
/// shard's slot is relabeled to its physical id through `live_tiles`.
/// Consequently:
///
/// * `plan.tiles` and `plan.predicted_tile_cycles` stay **slot-indexed**
///   (`tiles == live_tiles.len()`; slot `i`'s cycles belong to physical
///   tile `live_tiles[i]`), so [`LayerPlan::predicted_makespan_cycles`]
///   is the makespan over the live set;
/// * `plan.shard_tiles` carries **physical** ids, ready for dispatch;
/// * with the full tile array live (`live_tiles == [0, 1, .., n-1]`) the
///   result is identical to `plan_layer(heads, n, ..)` — failure-free
///   runs cannot diverge.
///
/// Relabeling is a bijection on tile names, so the layer-conformance
/// contract is untouched: merged head accounting is bit-identical to the
/// full-array plan of the same slot count; only *which* physical tiles
/// host the shards (and therefore the realized makespan under per-tile
/// slowdowns) moves.
///
/// # Panics
///
/// Panics if `heads` or `live_tiles` is empty, or if `live_tiles` is not
/// strictly ascending (duplicate or unsorted physical ids).
pub fn plan_layer_live(
    heads: &[PlannedHead],
    live_tiles: &[usize],
    placement: Placement,
    predict: impl Fn(usize, usize) -> u64,
) -> LayerPlan {
    assert!(
        !live_tiles.is_empty(),
        "a live plan needs at least one live tile"
    );
    assert!(
        live_tiles.windows(2).all(|w| w[0] < w[1]),
        "live tile ids must be strictly ascending: {live_tiles:?}"
    );
    let mut plan = plan_layer(heads, live_tiles.len(), placement, predict);
    for shard_tiles in &mut plan.shard_tiles {
        for tile in shard_tiles {
            *tile = live_tiles[*tile];
        }
    }
    plan
}

/// Round-robin shard layout: walking heads in canonical order, shards take
/// consecutive tiles from a running cursor (mod `tiles`). Because every
/// split is at most `tiles`, one head's shards always land on distinct
/// tiles.
fn round_robin_assignment(canonical: &[usize], splits: &[usize], tiles: usize) -> Vec<Vec<usize>> {
    let mut shard_tiles = vec![Vec::new(); splits.len()];
    let mut cursor = 0usize;
    for &h in canonical {
        shard_tiles[h] = (0..splits[h])
            .map(|_| {
                let tile = cursor % tiles;
                cursor += 1;
                tile
            })
            .collect();
    }
    shard_tiles
}

/// Greedy LPT shard layout: heads in canonical (descending predicted load)
/// order; each head's shards go to its split's worth of currently
/// least-loaded distinct tiles, ties toward the lower tile index.
fn lpt_assignment(
    heads: &[PlannedHead],
    canonical: &[usize],
    splits: &[usize],
    tiles: usize,
    predict: impl Fn(usize, usize) -> u64,
) -> Vec<Vec<usize>> {
    let mut shard_tiles = vec![Vec::new(); heads.len()];
    let mut loads = vec![0u64; tiles];
    for &h in canonical {
        let per_shard = predict(heads[h].seq_len, splits[h]);
        let mut order: Vec<usize> = (0..tiles).collect();
        order.sort_by_key(|&t| (loads[t], t));
        let chosen: Vec<usize> = order[..splits[h]].to_vec();
        for &tile in &chosen {
            loads[tile] += per_shard;
        }
        shard_tiles[h] = chosen;
    }
    shard_tiles
}

/// Predicted per-tile busy cycles of a shard layout (every shard of a head
/// is charged the head's predicted per-tile cycles at its split).
fn predicted_cycles_of(
    heads: &[PlannedHead],
    shard_tiles: &[Vec<usize>],
    tiles: usize,
    predict: impl Fn(usize, usize) -> u64,
) -> Vec<u64> {
    let mut cycles = vec![0u64; tiles];
    for (h, tiles_of) in shard_tiles.iter().enumerate() {
        let per_shard = predict(heads[h].seq_len, tiles_of.len());
        for &tile in tiles_of {
            cycles[tile] += per_shard;
        }
    }
    cycles
}

/// The pruning rate [`schedule_layer`]'s planner assumes. Placement needs
/// only *relative* loads, which a flat rate never reorders; realized
/// per-head pruning divergence is exactly what the conformance suite and
/// the LPT fallback bound.
const PLANNED_PRUNING_RATE: f64 = 0.0;

/// Cycle and energy totals of one attention layer executed on a multi-tile
/// accelerator under a [`Placement`] policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSchedule {
    /// Number of tiles used.
    pub tiles: usize,
    /// The placement policy that produced the schedule.
    pub placement: Placement,
    /// Per-tile busy cycles (sum of the shard cycles mapped to it).
    pub tile_cycles: Vec<u64>,
    /// Layer makespan: the busiest tile's cycle count. The **only**
    /// policy-dependent quantity in the schedule.
    pub makespan_cycles: u64,
    /// The planner's predicted makespan (what placement optimized).
    pub predicted_makespan_cycles: u64,
    /// Per input head, the tile split the plan chose.
    pub splits: Vec<usize>,
    /// Per input head, the tiled simulation — `heads[h].merged` is
    /// bit-identical to single-tile execution of head `h` for every policy
    /// and tile count.
    pub heads: Vec<TiledHeadSim>,
    /// Total energy of all heads (policy-independent).
    pub energy: EnergyBreakdown,
    /// Mean pruning rate across the layer's heads (policy-independent).
    pub pruning_rate: f64,
}

impl LayerSchedule {
    /// Load-balance efficiency: average tile busy time over the makespan
    /// (1.0 means perfectly balanced).
    pub fn balance(&self) -> f64 {
        if self.makespan_cycles == 0 || self.tile_cycles.is_empty() {
            return 1.0;
        }
        let mean = self.tile_cycles.iter().sum::<u64>() as f64 / self.tile_cycles.len() as f64;
        mean / self.makespan_cycles as f64
    }
}

/// Simulates every head of one layer and executes the placement
/// [`plan_layer`] chooses for `config.tiles` tiles under `placement`.
///
/// The plan is decided **before** any simulation, from the analytical cost
/// model at a flat pruning assumption — the same information a serving
/// admission path has. Execution then shards each head per its planned
/// split, charges shard cycles to the planned tiles, and reassembles every
/// head through [`merge_head_shards`], so per-head accounting, energy, and
/// pruning are bit-identical across policies; only
/// [`LayerSchedule::makespan_cycles`] (and the per-tile busy vector behind
/// it) depends on `placement`.
///
/// # Panics
///
/// Panics if `head_workloads` is empty or the configuration is invalid.
pub fn schedule_layer(
    head_workloads: &[HeadWorkload],
    config: &TileConfig,
    model: &EnergyModel,
    placement: Placement,
) -> LayerSchedule {
    assert!(
        !head_workloads.is_empty(),
        "a layer has at least one attention head"
    );
    config
        .validate()
        // lint:allow(panic-in-library, reason = "tile configs are validated at CLI parse and in builders; an invalid config reaching the scheduler is a programmer error, documented under # Panics")
        .unwrap_or_else(|e| panic!("invalid tile config: {e}"));
    let tiles = config.tiles.max(1);
    let planned: Vec<PlannedHead> = head_workloads
        .iter()
        .map(|w| PlannedHead {
            seq_len: w.seq_len(),
            tie_break: workload_fingerprint(w),
        })
        .collect();
    let cost = CostModel::analytical();
    let plan = plan_layer(&planned, tiles, placement, |seq_len, split| {
        cost.predict_head_cycles_tiled("", config, seq_len, PLANNED_PRUNING_RATE, split)
    });

    let mut tile_cycles = vec![0u64; tiles];
    let heads: Vec<TiledHeadSim> = head_workloads
        .iter()
        .enumerate()
        .map(|(h, workload)| {
            let tiled = simulate_head_tiled(workload, config, plan.split(h));
            for (shard, &tile) in plan.shard_tiles[h].iter().enumerate() {
                tile_cycles[tile] += tiled.tile_cycles[shard];
            }
            tiled
        })
        .collect();

    // Energy and pruning fold in the plan's canonical head order — a pure
    // function of head content shared by every policy — so these sums are
    // bit-identical under head shuffling and across placements.
    let mut energy = EnergyBreakdown::default();
    let mut pruning = 0.0f64;
    for &h in &plan.canonical {
        let result = &heads[h].merged;
        let head_energy = energy_from_events(&result.events, config, model);
        energy = EnergyBreakdown {
            qk_compute: energy.qk_compute + head_energy.qk_compute,
            key_memory: energy.key_memory + head_energy.key_memory,
            softmax: energy.softmax + head_energy.softmax,
            v_compute: energy.v_compute + head_energy.v_compute,
            value_memory: energy.value_memory + head_energy.value_memory,
        };
        pruning += result.pruning_rate();
    }

    LayerSchedule {
        tiles,
        placement,
        makespan_cycles: tile_cycles.iter().copied().max().unwrap_or(0),
        tile_cycles,
        predicted_makespan_cycles: plan.predicted_makespan_cycles(),
        splits: (0..head_workloads.len()).map(|h| plan.split(h)).collect(),
        heads,
        energy,
        pruning_rate: pruning / head_workloads.len() as f64,
    }
}

/// Cycle and energy totals of a whole model (a sequence of attention layers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSchedule {
    /// Per-layer schedules, input side first.
    pub layers: Vec<LayerSchedule>,
}

impl ModelSchedule {
    /// Total cycles across layers (layers run back to back).
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.makespan_cycles).sum()
    }

    /// Total energy across layers.
    pub fn total_energy(&self) -> f64 {
        self.layers.iter().map(|l| l.energy.total()).sum()
    }

    /// End-to-end latency in microseconds at the configured clock frequency.
    pub fn latency_us(&self, config: &TileConfig) -> f64 {
        self.total_cycles() as f64 / (config.frequency_mhz as f64)
    }

    /// Mean pruning rate across every layer.
    pub fn mean_pruning_rate(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(|l| l.pruning_rate).sum::<f64>() / self.layers.len() as f64
    }
}

/// Schedules every layer of a model under one placement policy.
///
/// # Panics
///
/// Panics if `layer_workloads` is empty.
pub fn schedule_model(
    layer_workloads: &[Vec<HeadWorkload>],
    config: &TileConfig,
    model: &EnergyModel,
    placement: Placement,
) -> ModelSchedule {
    assert!(
        !layer_workloads.is_empty(),
        "a model has at least one layer"
    );
    ModelSchedule {
        layers: layer_workloads
            .iter()
            .map(|heads| schedule_layer(heads, config, model, placement))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_head;
    use leopard_tensor::rng;

    fn workloads(heads: usize, threshold: f32, seed: u64) -> Vec<HeadWorkload> {
        (0..heads)
            .map(|h| {
                let mut r = rng::seeded(seed + h as u64);
                let q = rng::normal_matrix(&mut r, 24, 32, 0.0, 1.0);
                let k = rng::normal_matrix(&mut r, 24, 32, 0.0, 1.0);
                HeadWorkload::from_float(&q, &k, threshold, 12)
            })
            .collect()
    }

    /// Heads of *different* sizes, so predicted loads differ and placement
    /// decisions are non-trivial.
    fn ragged_workloads(lens: &[usize], seed: u64) -> Vec<HeadWorkload> {
        lens.iter()
            .enumerate()
            .map(|(h, &s)| {
                let mut r = rng::seeded(seed + h as u64);
                let q = rng::normal_matrix(&mut r, s, 32, 0.0, 1.0);
                let k = rng::normal_matrix(&mut r, s, 32, 0.0, 1.0);
                HeadWorkload::from_float(&q, &k, 0.2, 12)
            })
            .collect()
    }

    #[test]
    fn two_tiles_halve_the_makespan_of_an_even_head_count() {
        let heads = workloads(4, 0.2, 1);
        let model = EnergyModel::calibrated();
        let two_tiles = schedule_layer(&heads, &TileConfig::ae_leopard(), &model, Placement::Lpt);
        let mut one_tile_cfg = TileConfig::ae_leopard();
        one_tile_cfg.tiles = 1;
        let one_tile = schedule_layer(&heads, &one_tile_cfg, &model, Placement::Lpt);
        assert_eq!(two_tiles.tiles, 2);
        assert!(two_tiles.makespan_cycles < one_tile.makespan_cycles);
        // Same total work, same energy.
        assert!((two_tiles.energy.total() - one_tile.energy.total()).abs() < 1e-6);
        assert!(two_tiles.balance() > 0.8, "even head counts balance well");
    }

    #[test]
    fn odd_head_counts_leave_one_tile_busier_under_static_placement() {
        let heads = workloads(3, 0.2, 2);
        let model = EnergyModel::calibrated();
        let schedule = schedule_layer(&heads, &TileConfig::ae_leopard(), &model, Placement::Static);
        assert_eq!(schedule.tile_cycles.len(), 2);
        // Static places whole heads rank % tiles: two heads on tile 0.
        assert!(schedule.tile_cycles[0] > schedule.tile_cycles[1]);
        assert!(schedule.balance() < 1.0);
        assert!(
            schedule.splits.iter().all(|&s| s == 1),
            "static never splits"
        );
    }

    #[test]
    fn placement_changes_only_the_makespan() {
        // The conformance contract at unit-test scale: across the three
        // policies, per-head merged results, energy, and pruning are
        // bit-identical; only makespan/tile_cycles may move.
        let heads = ragged_workloads(&[40, 9, 23, 17, 31], 6);
        let model = EnergyModel::calibrated();
        let mut config = TileConfig::ae_leopard();
        config.tiles = 3;
        let schedules: Vec<LayerSchedule> = Placement::ALL
            .iter()
            .map(|&p| schedule_layer(&heads, &config, &model, p))
            .collect();
        let baseline: Vec<HeadSimResult> =
            heads.iter().map(|w| simulate_head(w, &config)).collect();
        for schedule in &schedules {
            for (h, tiled) in schedule.heads.iter().enumerate() {
                assert_eq!(tiled.merged, baseline[h], "head {h} diverged from baseline");
            }
            assert_eq!(
                schedule.energy.total().to_bits(),
                schedules[0].energy.total().to_bits(),
                "energy must be bit-identical across policies"
            );
            assert_eq!(
                schedule.pruning_rate.to_bits(),
                schedules[0].pruning_rate.to_bits(),
                "pruning must be bit-identical across policies"
            );
        }
    }

    #[test]
    fn over_tiled_layers_split_the_heaviest_heads() {
        // 2 heads on 6 tiles: the planner must hand the 4 spare tiles to
        // the heads by predicted load, heaviest first.
        let heads = ragged_workloads(&[48, 12], 7);
        let model = EnergyModel::calibrated();
        let mut config = TileConfig::ae_leopard();
        config.tiles = 6;
        let schedule = schedule_layer(&heads, &config, &model, Placement::Lpt);
        assert_eq!(schedule.splits.iter().sum::<usize>(), 6, "no tile idles");
        assert!(
            schedule.splits[0] > schedule.splits[1],
            "the heavier head gets the wider split: {:?}",
            schedule.splits
        );
        // Merged accounting survives the splits.
        for (h, tiled) in schedule.heads.iter().enumerate() {
            assert_eq!(tiled.merged, simulate_head(&heads[h], &config));
        }
    }

    #[test]
    fn lpt_never_predicts_a_longer_makespan_than_round_robin() {
        for (lens, tiles) in [
            (vec![40usize, 9, 23, 17, 31], 2usize),
            (vec![64, 8, 8, 8], 3),
            (vec![16; 7], 4),
            (vec![33], 5),
        ] {
            let planned: Vec<PlannedHead> = lens
                .iter()
                .enumerate()
                .map(|(i, &s)| PlannedHead {
                    seq_len: s,
                    tie_break: i as u64,
                })
                .collect();
            let cost = CostModel::analytical();
            let config = TileConfig::ae_leopard();
            let predict =
                |s: usize, t: usize| cost.predict_head_cycles_tiled("", &config, s, 0.0, t);
            let lpt = plan_layer(&planned, tiles, Placement::Lpt, predict);
            let rr = plan_layer(&planned, tiles, Placement::RoundRobin, predict);
            assert!(
                lpt.predicted_makespan_cycles() <= rr.predicted_makespan_cycles(),
                "LPT predicted {} > RR predicted {} for lens {lens:?} on {tiles} tiles",
                lpt.predicted_makespan_cycles(),
                rr.predicted_makespan_cycles()
            );
        }
    }

    #[test]
    fn plans_are_pure_functions_of_the_head_multiset() {
        let planned: Vec<PlannedHead> = [31usize, 9, 31, 17]
            .iter()
            .enumerate()
            .map(|(i, &s)| PlannedHead {
                seq_len: s,
                tie_break: 0xABC0 + i as u64,
            })
            .collect();
        let predict = |s: usize, t: usize| (s as u64 * 100) / t as u64;
        for placement in Placement::ALL {
            let plan = plan_layer(&planned, 3, placement, predict);
            let again = plan_layer(&planned, 3, placement, predict);
            assert_eq!(plan, again, "planning must be deterministic");
            // Reversed enumeration: same tiles end up with the same
            // predicted cycles, and each head keeps its shard tiles.
            let reversed: Vec<PlannedHead> = planned.iter().rev().copied().collect();
            let plan_rev = plan_layer(&reversed, 3, placement, predict);
            assert_eq!(plan.predicted_tile_cycles, plan_rev.predicted_tile_cycles);
            let n = planned.len();
            for h in 0..n {
                assert_eq!(
                    plan.shard_tiles[h],
                    plan_rev.shard_tiles[n - 1 - h],
                    "head {h} moved tiles under enumeration reversal ({placement:?})"
                );
            }
        }
    }

    #[test]
    fn round_robin_shards_land_on_distinct_tiles() {
        let planned = vec![PlannedHead {
            seq_len: 40,
            tie_break: 1,
        }];
        let plan = plan_layer(&planned, 4, Placement::RoundRobin, |s, t| {
            (s as u64 * 100) / t as u64
        });
        assert_eq!(plan.split(0), 4);
        let mut tiles = plan.shard_tiles[0].clone();
        tiles.sort_unstable();
        tiles.dedup();
        assert_eq!(tiles.len(), 4, "one head's shards must use distinct tiles");
    }

    #[test]
    fn placement_labels_round_trip() {
        for placement in Placement::ALL {
            assert_eq!(Placement::parse(placement.label()), Ok(placement));
        }
        assert_eq!(Placement::parse("round-robin"), Ok(Placement::RoundRobin));
        assert!(Placement::parse("nope").is_err());
        assert_eq!(Placement::default(), Placement::Lpt);
    }

    #[test]
    fn model_schedule_accumulates_layers() {
        let model = EnergyModel::calibrated();
        let layers = vec![workloads(2, 0.2, 3), workloads(2, 0.2, 4)];
        let schedule = schedule_model(&layers, &TileConfig::ae_leopard(), &model, Placement::Lpt);
        assert_eq!(schedule.layers.len(), 2);
        assert_eq!(
            schedule.total_cycles(),
            schedule
                .layers
                .iter()
                .map(|l| l.makespan_cycles)
                .sum::<u64>()
        );
        assert!(schedule.total_energy() > 0.0);
        assert!(schedule.latency_us(&TileConfig::ae_leopard()) > 0.0);
        assert!(schedule.mean_pruning_rate() > 0.0);
    }

    #[test]
    fn pruned_models_finish_faster_than_unpruned_ones() {
        let model = EnergyModel::calibrated();
        let pruned_layers = vec![workloads(2, 0.8, 5)];
        let mut unpruned = workloads(2, 0.8, 5);
        for w in &mut unpruned {
            w.threshold_int = i64::MIN / 4;
        }
        let pruned = schedule_model(
            &pruned_layers,
            &TileConfig::ae_leopard(),
            &model,
            Placement::Lpt,
        );
        let dense = schedule_model(
            &[unpruned],
            &TileConfig::ae_leopard(),
            &model,
            Placement::Lpt,
        );
        assert!(pruned.total_cycles() < dense.total_cycles());
        assert!(pruned.total_energy() < dense.total_energy());
    }

    #[test]
    #[should_panic(expected = "at least one attention head")]
    fn empty_layer_panics() {
        let _ = schedule_layer(
            &[],
            &TileConfig::ae_leopard(),
            &EnergyModel::calibrated(),
            Placement::Lpt,
        );
    }

    fn one_workload(s: usize, seed: u64) -> HeadWorkload {
        let mut r = rng::seeded(seed);
        let q = rng::normal_matrix(&mut r, s, 32, 0.0, 1.0);
        let k = rng::normal_matrix(&mut r, s, 32, 0.0, 1.0);
        HeadWorkload::from_float(&q, &k, 0.2, 12)
    }

    #[test]
    fn partition_is_balanced_contiguous_and_total() {
        for (s, t) in [(10, 3), (7, 7), (5, 8), (96, 4), (1, 2)] {
            let partition = TilePartition::new(s, t);
            let ranges = partition.ranges();
            assert_eq!(ranges.len(), t);
            let mut next = 0usize;
            for range in &ranges {
                assert_eq!(range.start, next, "ranges must be contiguous");
                next = range.end;
            }
            assert_eq!(next, s, "ranges must cover every row");
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(max - min <= 1, "s={s}, t={t}: sizes {sizes:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_tile_partition_panics() {
        let _ = TilePartition::new(8, 0);
    }

    #[test]
    fn tiled_simulation_merges_to_the_single_tile_result() {
        // The tile-scheduler contract at the schedule level: for every tile
        // count (including over-tiling with empty shards), the merged
        // result is bit-identical to simulate_head, the makespan never
        // exceeds the single-tile cycles, and at one tile they coincide.
        let w = one_workload(13, 7); // 13 is prime: never divisible
        for config in [TileConfig::ae_leopard(), TileConfig::baseline()] {
            let single = simulate_head(&w, &config);
            for tiles in [1usize, 2, 3, 4, 8, 16] {
                let tiled = simulate_head_tiled(&w, &config, tiles);
                assert_eq!(tiled.merged, single, "tiles={tiles} on {}", config.name);
                assert_eq!(tiled.tile_cycles.len(), tiles);
                assert!(tiled.makespan_cycles() <= single.total_cycles);
                assert!(tiled.tile_speedup() >= 1.0);
                assert!(tiled.balance() > 0.0 && tiled.balance() <= 1.0);
            }
            let one = simulate_head_tiled(&w, &config, 1);
            assert_eq!(one.makespan_cycles(), single.total_cycles);
            assert!((one.tile_speedup() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn more_tiles_shrink_the_makespan_of_a_large_head() {
        let w = one_workload(64, 9);
        let cfg = TileConfig::ae_leopard();
        let makespans: Vec<u64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&t| simulate_head_tiled(&w, &cfg, t).makespan_cycles())
            .collect();
        for pair in makespans.windows(2) {
            assert!(
                pair[1] < pair[0],
                "doubling tiles must cut the makespan: {makespans:?}"
            );
        }
        // Near-linear scaling at 64 rows over 4 tiles.
        let four = simulate_head_tiled(&w, &cfg, 4);
        assert!(four.tile_speedup() > 2.5, "speedup {}", four.tile_speedup());
    }

    #[test]
    fn over_tiling_leaves_empty_tiles_with_zero_cycles() {
        let w = one_workload(5, 11);
        let cfg = TileConfig::ae_leopard();
        let tiled = simulate_head_tiled(&w, &cfg, 8);
        assert_eq!(tiled.tile_cycles.len(), 8);
        assert_eq!(tiled.tile_cycles.iter().filter(|&&c| c == 0).count(), 3);
        assert_eq!(tiled.merged, simulate_head(&w, &cfg));
    }

    fn planned(lens: &[usize]) -> Vec<PlannedHead> {
        lens.iter()
            .enumerate()
            .map(|(h, &s)| PlannedHead {
                seq_len: s,
                tie_break: h as u64,
            })
            .collect()
    }

    fn flat_predict(seq_len: usize, tiles: usize) -> u64 {
        (seq_len as u64 * 17).div_ceil(tiles as u64) + 5
    }

    #[test]
    fn live_plan_over_full_array_is_the_plain_plan() {
        let heads = planned(&[40, 9, 23, 17, 31]);
        for placement in Placement::ALL {
            for tiles in [1usize, 3, 4, 8] {
                let full: Vec<usize> = (0..tiles).collect();
                let live = plan_layer_live(&heads, &full, placement, flat_predict);
                let plain = plan_layer(&heads, tiles, placement, flat_predict);
                assert_eq!(live, plain, "{placement:?} over {tiles} tiles");
            }
        }
    }

    #[test]
    fn live_plan_relabels_tiles_without_moving_the_schedule() {
        // Tiles 1 and 3 of a 5-tile array are down: planning over the live
        // set {0, 2, 4} must make the same decisions as a plain 3-tile plan
        // — same canonical order, splits, slot cycles, makespan — with only
        // the physical shard labels mapped through the live set.
        let heads = planned(&[40, 9, 23, 17, 31, 12, 28]);
        let live = [0usize, 2, 4];
        for placement in Placement::ALL {
            let live_plan = plan_layer_live(&heads, &live, placement, flat_predict);
            let slot_plan = plan_layer(&heads, live.len(), placement, flat_predict);
            assert_eq!(live_plan.canonical, slot_plan.canonical);
            assert_eq!(
                live_plan.predicted_tile_cycles,
                slot_plan.predicted_tile_cycles
            );
            assert_eq!(
                live_plan.predicted_makespan_cycles(),
                slot_plan.predicted_makespan_cycles()
            );
            for (h, slots) in slot_plan.shard_tiles.iter().enumerate() {
                let relabeled: Vec<usize> = slots.iter().map(|&s| live[s]).collect();
                assert_eq!(live_plan.shard_tiles[h], relabeled, "head {h}");
                // Every physical id the live plan names is actually live.
                assert!(live_plan.shard_tiles[h].iter().all(|t| live.contains(t)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn live_plan_rejects_duplicate_tiles() {
        let _ = plan_layer_live(&planned(&[8]), &[1, 1], Placement::Lpt, flat_predict);
    }

    #[test]
    #[should_panic(expected = "at least one live tile")]
    fn live_plan_rejects_an_empty_live_set() {
        let _ = plan_layer_live(&planned(&[8]), &[], Placement::Lpt, flat_predict);
    }
}
