//! Multi-head / multi-tile scheduling (Section 4.1).
//!
//! A LeOPArd accelerator instantiates several tiles and "attention heads are
//! partitioned across the tiles, and the operations in the tiles are
//! independent of each other on their corresponding heads". This module
//! models that level — and, since the tile-scheduler PR, the level *below*
//! it: [`TilePartition`] deterministically splits one head's Q rows across
//! the tiles, [`simulate_head_tiled`] runs the shards and
//! [`merge_head_shards`] reassembles them into a [`TiledHeadSim`] whose
//! merged accounting is bit-identical to single-tile execution (counters
//! sum, timing reconstructs exactly; the per-tile makespan is the parallel
//! latency). Above that, [`schedule_layer`] assigns whole heads to tiles
//! (round-robin, matching the static partitioning of the paper) and
//! reports the layer's makespan, total energy, and per-tile utilization; a
//! model-level helper then sums layers.

use crate::config::TileConfig;
use crate::energy::{energy_from_events, EnergyBreakdown, EnergyModel};
use crate::sim::{
    merge_shards, simulate_head, simulate_head_shard, HeadSimResult, HeadWorkload, TileShardSim,
};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Deterministic contiguous partition of a head's `seq_len` Q rows across
/// `tiles` tiles: the first `seq_len % tiles` tiles receive one extra row,
/// so shard sizes differ by at most one and the mapping is a pure function
/// of `(seq_len, tiles)` — the property the engine's bit-identity across
/// thread counts rests on. Tiles beyond the row count receive empty ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePartition {
    seq_len: usize,
    tiles: usize,
}

impl TilePartition {
    /// Partitions `seq_len` rows over `tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn new(seq_len: usize, tiles: usize) -> Self {
        assert!(tiles > 0, "a partition needs at least one tile");
        Self { seq_len, tiles }
    }

    /// Number of tiles in the partition.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Number of rows being partitioned.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// The contiguous row range assigned to `tile` (possibly empty).
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn range(&self, tile: usize) -> Range<usize> {
        assert!(tile < self.tiles, "tile {tile} of {}", self.tiles);
        let base = self.seq_len / self.tiles;
        let extra = self.seq_len % self.tiles;
        let start = tile * base + tile.min(extra);
        let len = base + usize::from(tile < extra);
        start..start + len
    }

    /// All row ranges, in tile order (their concatenation is `0..seq_len`).
    pub fn ranges(&self) -> Vec<Range<usize>> {
        (0..self.tiles).map(|tile| self.range(tile)).collect()
    }
}

/// Result of simulating one attention head partitioned across the tiles of
/// an accelerator: the per-tile pipeline cycles (each shard running alone
/// on its tile), and the merged single-tile-exact [`HeadSimResult`].
///
/// The determinism/merge contract: `merged` is **bit-identical** to
/// [`simulate_head`] / [`crate::sim::simulate_head_reference`] on the same
/// workload, for every tile count — counters and histograms are sums over
/// tiles, and the timing fields are reconstructed exactly from the shard
/// boundary terms (see [`crate::sim::merge_shards`]). What the tile count
/// *does* change is [`makespan_cycles`](Self::makespan_cycles): the
/// busiest tile's cycles, i.e. the latency of the head when the tiles run
/// in parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledHeadSim {
    /// Number of tiles the head was partitioned across.
    pub tiles: usize,
    /// Per-tile standalone pipeline cycles (0 for tiles without rows) —
    /// "cycles = max over tiles" is taken over this vector.
    pub tile_cycles: Vec<u64>,
    /// The merged accounting: bit-identical to single-tile execution.
    pub merged: HeadSimResult,
}

impl TiledHeadSim {
    /// Multi-tile latency of the head: the busiest tile's cycles (at least
    /// 1, mirroring [`HeadSimResult::total_cycles`]).
    pub fn makespan_cycles(&self) -> u64 {
        self.tile_cycles.iter().copied().max().unwrap_or(0).max(1)
    }

    /// Cycle-level speedup of the tile-parallel execution over single-tile
    /// execution of the same head (1.0 at one tile).
    pub fn tile_speedup(&self) -> f64 {
        self.merged.total_cycles as f64 / self.makespan_cycles() as f64
    }

    /// Load-balance efficiency: mean tile cycles over the makespan (1.0
    /// means perfectly balanced; includes row-less tiles, so over-tiling
    /// shows up as imbalance).
    pub fn balance(&self) -> f64 {
        if self.tile_cycles.is_empty() {
            return 1.0;
        }
        let mean = self.tile_cycles.iter().sum::<u64>() as f64 / self.tile_cycles.len() as f64;
        mean / self.makespan_cycles() as f64
    }
}

/// Assembles a [`TiledHeadSim`] from independently-simulated shards, one
/// per tile in tile order. This is the merge the runtime engine calls after
/// its shard jobs complete; [`simulate_head_tiled`] is the serial
/// reference for it.
///
/// # Panics
///
/// Panics if `shards` is not one-per-tile, covers no rows, or is not
/// contiguous in tile order (see [`crate::sim::merge_shards`]).
pub fn merge_head_shards(tiles: usize, shards: &[TileShardSim]) -> TiledHeadSim {
    assert_eq!(shards.len(), tiles, "one shard per tile");
    TiledHeadSim {
        tiles,
        tile_cycles: shards.iter().map(TileShardSim::standalone_cycles).collect(),
        merged: merge_shards(shards),
    }
}

/// Simulates one head with its Q rows partitioned across `tiles` tiles
/// (each tile still sees every K column), serially shard-by-shard. The
/// runtime engine executes the same shards as parallel sub-DAG jobs and
/// merges them with [`merge_head_shards`]; results are identical by
/// construction.
///
/// # Panics
///
/// Panics if the configuration is invalid, the workload is degenerate
/// (zero-length sequence), or `tiles` is zero.
pub fn simulate_head_tiled(
    workload: &HeadWorkload,
    config: &TileConfig,
    tiles: usize,
) -> TiledHeadSim {
    assert!(
        workload.seq_len() > 0,
        "workload must contain at least one query"
    );
    let partition = TilePartition::new(workload.seq_len(), tiles);
    let shards: Vec<TileShardSim> = partition
        .ranges()
        .into_iter()
        .map(|rows| simulate_head_shard(workload, config, rows))
        .collect();
    merge_head_shards(tiles, &shards)
}

/// Cycle and energy totals of one attention layer executed on a multi-tile
/// accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSchedule {
    /// Number of tiles used.
    pub tiles: usize,
    /// Per-tile busy cycles (sum of the cycles of the heads mapped to it).
    pub tile_cycles: Vec<u64>,
    /// Layer makespan: the busiest tile's cycle count.
    pub makespan_cycles: u64,
    /// Total energy of all heads.
    pub energy: EnergyBreakdown,
    /// Mean pruning rate across the layer's heads.
    pub pruning_rate: f64,
}

impl LayerSchedule {
    /// Load-balance efficiency: average tile busy time over the makespan
    /// (1.0 means perfectly balanced).
    pub fn balance(&self) -> f64 {
        if self.makespan_cycles == 0 || self.tile_cycles.is_empty() {
            return 1.0;
        }
        let mean = self.tile_cycles.iter().sum::<u64>() as f64 / self.tile_cycles.len() as f64;
        mean / self.makespan_cycles as f64
    }
}

/// Simulates every head of one layer and schedules them round-robin over the
/// configured number of tiles.
///
/// # Panics
///
/// Panics if `head_workloads` is empty or the configuration is invalid.
pub fn schedule_layer(
    head_workloads: &[HeadWorkload],
    config: &TileConfig,
    model: &EnergyModel,
) -> LayerSchedule {
    assert!(
        !head_workloads.is_empty(),
        "a layer has at least one attention head"
    );
    config
        .validate()
        // lint:allow(panic-in-library, reason = "tile configs are validated at CLI parse and in builders; an invalid config reaching the scheduler is a programmer error, documented under # Panics")
        .unwrap_or_else(|e| panic!("invalid tile config: {e}"));
    let tiles = config.tiles.max(1);
    let mut tile_cycles = vec![0u64; tiles];
    let mut energy = EnergyBreakdown::default();
    let mut pruning = 0.0f64;

    for (head_idx, workload) in head_workloads.iter().enumerate() {
        let result: HeadSimResult = simulate_head(workload, config);
        let tile = head_idx % tiles;
        tile_cycles[tile] += result.total_cycles;
        let head_energy = energy_from_events(&result.events, config, model);
        energy = EnergyBreakdown {
            qk_compute: energy.qk_compute + head_energy.qk_compute,
            key_memory: energy.key_memory + head_energy.key_memory,
            softmax: energy.softmax + head_energy.softmax,
            v_compute: energy.v_compute + head_energy.v_compute,
            value_memory: energy.value_memory + head_energy.value_memory,
        };
        // lint:allow(float-accumulation-order, reason = "serial loop in fixed head-index order; the sum is deterministic because nothing reorders head_workloads, pinned by the schedule golden tests")
        pruning += result.pruning_rate();
    }

    LayerSchedule {
        tiles,
        makespan_cycles: tile_cycles.iter().copied().max().unwrap_or(0),
        tile_cycles,
        energy,
        pruning_rate: pruning / head_workloads.len() as f64,
    }
}

/// Cycle and energy totals of a whole model (a sequence of attention layers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSchedule {
    /// Per-layer schedules, input side first.
    pub layers: Vec<LayerSchedule>,
}

impl ModelSchedule {
    /// Total cycles across layers (layers run back to back).
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.makespan_cycles).sum()
    }

    /// Total energy across layers.
    pub fn total_energy(&self) -> f64 {
        self.layers.iter().map(|l| l.energy.total()).sum()
    }

    /// End-to-end latency in microseconds at the configured clock frequency.
    pub fn latency_us(&self, config: &TileConfig) -> f64 {
        self.total_cycles() as f64 / (config.frequency_mhz as f64)
    }

    /// Mean pruning rate across every layer.
    pub fn mean_pruning_rate(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(|l| l.pruning_rate).sum::<f64>() / self.layers.len() as f64
    }
}

/// Schedules every layer of a model.
///
/// # Panics
///
/// Panics if `layer_workloads` is empty.
pub fn schedule_model(
    layer_workloads: &[Vec<HeadWorkload>],
    config: &TileConfig,
    model: &EnergyModel,
) -> ModelSchedule {
    assert!(
        !layer_workloads.is_empty(),
        "a model has at least one layer"
    );
    ModelSchedule {
        layers: layer_workloads
            .iter()
            .map(|heads| schedule_layer(heads, config, model))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_tensor::rng;

    fn workloads(heads: usize, threshold: f32, seed: u64) -> Vec<HeadWorkload> {
        (0..heads)
            .map(|h| {
                let mut r = rng::seeded(seed + h as u64);
                let q = rng::normal_matrix(&mut r, 24, 32, 0.0, 1.0);
                let k = rng::normal_matrix(&mut r, 24, 32, 0.0, 1.0);
                HeadWorkload::from_float(&q, &k, threshold, 12)
            })
            .collect()
    }

    #[test]
    fn two_tiles_halve_the_makespan_of_an_even_head_count() {
        let heads = workloads(4, 0.2, 1);
        let model = EnergyModel::calibrated();
        let two_tiles = schedule_layer(&heads, &TileConfig::ae_leopard(), &model);
        let mut one_tile_cfg = TileConfig::ae_leopard();
        one_tile_cfg.tiles = 1;
        let one_tile = schedule_layer(&heads, &one_tile_cfg, &model);
        assert_eq!(two_tiles.tiles, 2);
        assert!(two_tiles.makespan_cycles < one_tile.makespan_cycles);
        // Same total work, same energy.
        assert!((two_tiles.energy.total() - one_tile.energy.total()).abs() < 1e-6);
        assert!(two_tiles.balance() > 0.8, "even head counts balance well");
    }

    #[test]
    fn odd_head_counts_leave_one_tile_busier() {
        let heads = workloads(3, 0.2, 2);
        let model = EnergyModel::calibrated();
        let schedule = schedule_layer(&heads, &TileConfig::ae_leopard(), &model);
        assert_eq!(schedule.tile_cycles.len(), 2);
        assert!(schedule.tile_cycles[0] > schedule.tile_cycles[1]);
        assert!(schedule.balance() < 1.0);
    }

    #[test]
    fn model_schedule_accumulates_layers() {
        let model = EnergyModel::calibrated();
        let layers = vec![workloads(2, 0.2, 3), workloads(2, 0.2, 4)];
        let schedule = schedule_model(&layers, &TileConfig::ae_leopard(), &model);
        assert_eq!(schedule.layers.len(), 2);
        assert_eq!(
            schedule.total_cycles(),
            schedule
                .layers
                .iter()
                .map(|l| l.makespan_cycles)
                .sum::<u64>()
        );
        assert!(schedule.total_energy() > 0.0);
        assert!(schedule.latency_us(&TileConfig::ae_leopard()) > 0.0);
        assert!(schedule.mean_pruning_rate() > 0.0);
    }

    #[test]
    fn pruned_models_finish_faster_than_unpruned_ones() {
        let model = EnergyModel::calibrated();
        let pruned_layers = vec![workloads(2, 0.8, 5)];
        let mut unpruned = workloads(2, 0.8, 5);
        for w in &mut unpruned {
            w.threshold_int = i64::MIN / 4;
        }
        let pruned = schedule_model(&pruned_layers, &TileConfig::ae_leopard(), &model);
        let dense = schedule_model(&[unpruned], &TileConfig::ae_leopard(), &model);
        assert!(pruned.total_cycles() < dense.total_cycles());
        assert!(pruned.total_energy() < dense.total_energy());
    }

    #[test]
    #[should_panic(expected = "at least one attention head")]
    fn empty_layer_panics() {
        let _ = schedule_layer(&[], &TileConfig::ae_leopard(), &EnergyModel::calibrated());
    }

    fn one_workload(s: usize, seed: u64) -> HeadWorkload {
        let mut r = rng::seeded(seed);
        let q = rng::normal_matrix(&mut r, s, 32, 0.0, 1.0);
        let k = rng::normal_matrix(&mut r, s, 32, 0.0, 1.0);
        HeadWorkload::from_float(&q, &k, 0.2, 12)
    }

    #[test]
    fn partition_is_balanced_contiguous_and_total() {
        for (s, t) in [(10, 3), (7, 7), (5, 8), (96, 4), (1, 2)] {
            let partition = TilePartition::new(s, t);
            let ranges = partition.ranges();
            assert_eq!(ranges.len(), t);
            let mut next = 0usize;
            for range in &ranges {
                assert_eq!(range.start, next, "ranges must be contiguous");
                next = range.end;
            }
            assert_eq!(next, s, "ranges must cover every row");
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(max - min <= 1, "s={s}, t={t}: sizes {sizes:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_tile_partition_panics() {
        let _ = TilePartition::new(8, 0);
    }

    #[test]
    fn tiled_simulation_merges_to_the_single_tile_result() {
        // The tile-scheduler contract at the schedule level: for every tile
        // count (including over-tiling with empty shards), the merged
        // result is bit-identical to simulate_head, the makespan never
        // exceeds the single-tile cycles, and at one tile they coincide.
        let w = one_workload(13, 7); // 13 is prime: never divisible
        for config in [TileConfig::ae_leopard(), TileConfig::baseline()] {
            let single = simulate_head(&w, &config);
            for tiles in [1usize, 2, 3, 4, 8, 16] {
                let tiled = simulate_head_tiled(&w, &config, tiles);
                assert_eq!(tiled.merged, single, "tiles={tiles} on {}", config.name);
                assert_eq!(tiled.tile_cycles.len(), tiles);
                assert!(tiled.makespan_cycles() <= single.total_cycles);
                assert!(tiled.tile_speedup() >= 1.0);
                assert!(tiled.balance() > 0.0 && tiled.balance() <= 1.0);
            }
            let one = simulate_head_tiled(&w, &config, 1);
            assert_eq!(one.makespan_cycles(), single.total_cycles);
            assert!((one.tile_speedup() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn more_tiles_shrink_the_makespan_of_a_large_head() {
        let w = one_workload(64, 9);
        let cfg = TileConfig::ae_leopard();
        let makespans: Vec<u64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&t| simulate_head_tiled(&w, &cfg, t).makespan_cycles())
            .collect();
        for pair in makespans.windows(2) {
            assert!(
                pair[1] < pair[0],
                "doubling tiles must cut the makespan: {makespans:?}"
            );
        }
        // Near-linear scaling at 64 rows over 4 tiles.
        let four = simulate_head_tiled(&w, &cfg, 4);
        assert!(four.tile_speedup() > 2.5, "speedup {}", four.tile_speedup());
    }

    #[test]
    fn over_tiling_leaves_empty_tiles_with_zero_cycles() {
        let w = one_workload(5, 11);
        let cfg = TileConfig::ae_leopard();
        let tiled = simulate_head_tiled(&w, &cfg, 8);
        assert_eq!(tiled.tile_cycles.len(), 8);
        assert_eq!(tiled.tile_cycles.iter().filter(|&&c| c == 0).count(), 3);
        assert_eq!(tiled.merged, simulate_head(&w, &cfg));
    }
}
