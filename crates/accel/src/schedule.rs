//! Multi-head / multi-tile scheduling (Section 4.1).
//!
//! A LeOPArd accelerator instantiates several tiles and "attention heads are
//! partitioned across the tiles, and the operations in the tiles are
//! independent of each other on their corresponding heads". This module
//! models that level: given the per-head simulation results of one attention
//! layer, it assigns heads to tiles (round-robin, matching the static
//! partitioning of the paper) and reports the layer's makespan, the total
//! energy, and per-tile utilization; a model-level helper then sums layers.

use crate::config::TileConfig;
use crate::energy::{energy_from_events, EnergyBreakdown, EnergyModel};
use crate::sim::{simulate_head, HeadSimResult, HeadWorkload};
use serde::{Deserialize, Serialize};

/// Cycle and energy totals of one attention layer executed on a multi-tile
/// accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSchedule {
    /// Number of tiles used.
    pub tiles: usize,
    /// Per-tile busy cycles (sum of the cycles of the heads mapped to it).
    pub tile_cycles: Vec<u64>,
    /// Layer makespan: the busiest tile's cycle count.
    pub makespan_cycles: u64,
    /// Total energy of all heads.
    pub energy: EnergyBreakdown,
    /// Mean pruning rate across the layer's heads.
    pub pruning_rate: f64,
}

impl LayerSchedule {
    /// Load-balance efficiency: average tile busy time over the makespan
    /// (1.0 means perfectly balanced).
    pub fn balance(&self) -> f64 {
        if self.makespan_cycles == 0 || self.tile_cycles.is_empty() {
            return 1.0;
        }
        let mean = self.tile_cycles.iter().sum::<u64>() as f64 / self.tile_cycles.len() as f64;
        mean / self.makespan_cycles as f64
    }
}

/// Simulates every head of one layer and schedules them round-robin over the
/// configured number of tiles.
///
/// # Panics
///
/// Panics if `head_workloads` is empty or the configuration is invalid.
pub fn schedule_layer(
    head_workloads: &[HeadWorkload],
    config: &TileConfig,
    model: &EnergyModel,
) -> LayerSchedule {
    assert!(
        !head_workloads.is_empty(),
        "a layer has at least one attention head"
    );
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid tile config: {e}"));
    let tiles = config.tiles.max(1);
    let mut tile_cycles = vec![0u64; tiles];
    let mut energy = EnergyBreakdown::default();
    let mut pruning = 0.0f64;

    for (head_idx, workload) in head_workloads.iter().enumerate() {
        let result: HeadSimResult = simulate_head(workload, config);
        let tile = head_idx % tiles;
        tile_cycles[tile] += result.total_cycles;
        let head_energy = energy_from_events(&result.events, config, model);
        energy = EnergyBreakdown {
            qk_compute: energy.qk_compute + head_energy.qk_compute,
            key_memory: energy.key_memory + head_energy.key_memory,
            softmax: energy.softmax + head_energy.softmax,
            v_compute: energy.v_compute + head_energy.v_compute,
            value_memory: energy.value_memory + head_energy.value_memory,
        };
        pruning += result.pruning_rate();
    }

    LayerSchedule {
        tiles,
        makespan_cycles: tile_cycles.iter().copied().max().unwrap_or(0),
        tile_cycles,
        energy,
        pruning_rate: pruning / head_workloads.len() as f64,
    }
}

/// Cycle and energy totals of a whole model (a sequence of attention layers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSchedule {
    /// Per-layer schedules, input side first.
    pub layers: Vec<LayerSchedule>,
}

impl ModelSchedule {
    /// Total cycles across layers (layers run back to back).
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.makespan_cycles).sum()
    }

    /// Total energy across layers.
    pub fn total_energy(&self) -> f64 {
        self.layers.iter().map(|l| l.energy.total()).sum()
    }

    /// End-to-end latency in microseconds at the configured clock frequency.
    pub fn latency_us(&self, config: &TileConfig) -> f64 {
        self.total_cycles() as f64 / (config.frequency_mhz as f64)
    }

    /// Mean pruning rate across every layer.
    pub fn mean_pruning_rate(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(|l| l.pruning_rate).sum::<f64>() / self.layers.len() as f64
    }
}

/// Schedules every layer of a model.
///
/// # Panics
///
/// Panics if `layer_workloads` is empty.
pub fn schedule_model(
    layer_workloads: &[Vec<HeadWorkload>],
    config: &TileConfig,
    model: &EnergyModel,
) -> ModelSchedule {
    assert!(
        !layer_workloads.is_empty(),
        "a model has at least one layer"
    );
    ModelSchedule {
        layers: layer_workloads
            .iter()
            .map(|heads| schedule_layer(heads, config, model))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_tensor::rng;

    fn workloads(heads: usize, threshold: f32, seed: u64) -> Vec<HeadWorkload> {
        (0..heads)
            .map(|h| {
                let mut r = rng::seeded(seed + h as u64);
                let q = rng::normal_matrix(&mut r, 24, 32, 0.0, 1.0);
                let k = rng::normal_matrix(&mut r, 24, 32, 0.0, 1.0);
                HeadWorkload::from_float(&q, &k, threshold, 12)
            })
            .collect()
    }

    #[test]
    fn two_tiles_halve_the_makespan_of_an_even_head_count() {
        let heads = workloads(4, 0.2, 1);
        let model = EnergyModel::calibrated();
        let two_tiles = schedule_layer(&heads, &TileConfig::ae_leopard(), &model);
        let mut one_tile_cfg = TileConfig::ae_leopard();
        one_tile_cfg.tiles = 1;
        let one_tile = schedule_layer(&heads, &one_tile_cfg, &model);
        assert_eq!(two_tiles.tiles, 2);
        assert!(two_tiles.makespan_cycles < one_tile.makespan_cycles);
        // Same total work, same energy.
        assert!((two_tiles.energy.total() - one_tile.energy.total()).abs() < 1e-6);
        assert!(two_tiles.balance() > 0.8, "even head counts balance well");
    }

    #[test]
    fn odd_head_counts_leave_one_tile_busier() {
        let heads = workloads(3, 0.2, 2);
        let model = EnergyModel::calibrated();
        let schedule = schedule_layer(&heads, &TileConfig::ae_leopard(), &model);
        assert_eq!(schedule.tile_cycles.len(), 2);
        assert!(schedule.tile_cycles[0] > schedule.tile_cycles[1]);
        assert!(schedule.balance() < 1.0);
    }

    #[test]
    fn model_schedule_accumulates_layers() {
        let model = EnergyModel::calibrated();
        let layers = vec![workloads(2, 0.2, 3), workloads(2, 0.2, 4)];
        let schedule = schedule_model(&layers, &TileConfig::ae_leopard(), &model);
        assert_eq!(schedule.layers.len(), 2);
        assert_eq!(
            schedule.total_cycles(),
            schedule
                .layers
                .iter()
                .map(|l| l.makespan_cycles)
                .sum::<u64>()
        );
        assert!(schedule.total_energy() > 0.0);
        assert!(schedule.latency_us(&TileConfig::ae_leopard()) > 0.0);
        assert!(schedule.mean_pruning_rate() > 0.0);
    }

    #[test]
    fn pruned_models_finish_faster_than_unpruned_ones() {
        let model = EnergyModel::calibrated();
        let pruned_layers = vec![workloads(2, 0.8, 5)];
        let mut unpruned = workloads(2, 0.8, 5);
        for w in &mut unpruned {
            w.threshold_int = i64::MIN / 4;
        }
        let pruned = schedule_model(&pruned_layers, &TileConfig::ae_leopard(), &model);
        let dense = schedule_model(&[unpruned], &TileConfig::ae_leopard(), &model);
        assert!(pruned.total_cycles() < dense.total_cycles());
        assert!(pruned.total_energy() < dense.total_energy());
    }

    #[test]
    #[should_panic(expected = "at least one attention head")]
    fn empty_layer_panics() {
        let _ = schedule_layer(&[], &TileConfig::ae_leopard(), &EnergyModel::calibrated());
    }
}
