//! Cycle-level tile simulation.
//!
//! The simulator models one attention head flowing through a LeOPArd tile:
//! every Q row is broadcast to the `N_QK` bit-serial DPUs, each DPU works
//! through its share of the K columns (terminating early where the margin
//! allows), surviving scores and their indices are pushed into the
//! Score/IDX FIFOs, and the single back-end V-PU consumes them — one softmax
//! evaluation plus one 64-wide `·V` MAC operation per surviving score. The
//! front-end of the *next* Q row overlaps with the back-end of the current
//! one; when the back-end is still busy the front-end stalls (Section 4.1).
//!
//! The simulator's outputs are cycle counts, event counts (for the energy
//! model), per-row utilization, and the bit-profile histogram behind Figure 8.
//!
//! Two interchangeable inner loops produce the per-pair dot-product
//! outcomes: [`simulate_head`] runs the incremental bit-plane kernel
//! ([`crate::kernel`]), [`simulate_head_reference`] the scalar per-element
//! DPU ([`crate::dpu`]). Their results are bit-identical by contract; both
//! share one accounting loop, so the equivalence reduces to the per-pair
//! outcomes the differential tests pin down.

use crate::config::TileConfig;
use crate::dpu::{DotProductOutcome, QkDpu};
use crate::kernel::{QkKernel, RowScratch};
use leopard_quant::bitserial::BitSerialVector;
use leopard_quant::fixed::QuantParams;
use leopard_quant::planes::KPlanes;
use leopard_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// A quantized attention-head workload ready for simulation.
#[derive(Debug, Clone)]
pub struct HeadWorkload {
    /// Quantized Q codes, one row per query token (`s x d`).
    pub q_codes: Vec<Vec<i32>>,
    /// Quantized K codes, one row per key token (`s x d`).
    pub k_codes: Vec<Vec<i32>>,
    /// Pruning threshold in the integer product domain.
    pub threshold_int: i64,
    /// Head dimension `d`.
    pub head_dim: usize,
    /// Packed bit-plane decomposition of `k_codes`, built **once** at
    /// construction and shared by every simulation unit of this head (the
    /// runtime cache hands the whole workload out behind an `Arc`, so the
    /// four per-configuration units never rebuild it).
    ///
    /// Invariant: this must stay in sync with `k_codes` — build workloads
    /// through [`HeadWorkload::from_codes`] / [`HeadWorkload::from_float`]
    /// rather than mutating `k_codes` in place. A struct literal may leave
    /// it empty (the kernel path then re-decomposes), but stale planes for
    /// *different* same-shape codes cannot be detected cheaply.
    pub k_planes: Vec<KPlanes>,
}

impl HeadWorkload {
    /// Builds a workload from float Q/K matrices and a float threshold
    /// (expressed in the scaled score domain, i.e. after the `1/sqrt(d)`
    /// factor), quantizing both operands to `qk_bits`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes of `q` and `k` differ.
    pub fn from_float(q: &Matrix, k: &Matrix, threshold: f32, qk_bits: u32) -> Self {
        assert_eq!(q.shape(), k.shape(), "Q and K must share shape");
        let d = q.cols();
        let qp = QuantParams::calibrate(qk_bits, q);
        let kp = QuantParams::calibrate(qk_bits, k);
        let qq = qp.quantize_matrix(q);
        let kq = kp.quantize_matrix(k);
        // real_score = int_dot * product_scale / sqrt(d) ⇒ threshold_int.
        let score_scale = qq.product_scale(&kq) / (d as f32).sqrt();
        let threshold_int = (threshold / score_scale).round() as i64;
        Self::from_codes(
            (0..q.rows()).map(|r| qq.row(r).to_vec()).collect(),
            (0..k.rows()).map(|r| kq.row(r).to_vec()).collect(),
            threshold_int,
            d,
            qk_bits,
        )
    }

    /// Builds a workload from already-quantized codes, decomposing K into
    /// bit planes for the `qk_bits - 1` magnitude bits of the operand width.
    ///
    /// # Panics
    ///
    /// Panics if any K magnitude does not fit in `qk_bits - 1` bits.
    pub fn from_codes(
        q_codes: Vec<Vec<i32>>,
        k_codes: Vec<Vec<i32>>,
        threshold_int: i64,
        head_dim: usize,
        qk_bits: u32,
    ) -> Self {
        let k_planes = k_codes
            .iter()
            .map(|codes| KPlanes::new(codes, qk_bits - 1))
            .collect();
        Self {
            q_codes,
            k_codes,
            threshold_int,
            head_dim,
            k_planes,
        }
    }

    /// Sequence length of the workload.
    pub fn seq_len(&self) -> usize {
        self.q_codes.len()
    }

    /// The bit-plane decomposition at a given magnitude width: the prebuilt
    /// planes when the width matches (the hot path — every tile preset
    /// shares the 12-bit operand width), a fresh decomposition otherwise
    /// (e.g. a workload quantized narrower than the simulated tile).
    pub fn k_planes_at(&self, magnitude_bits: u32) -> Cow<'_, [KPlanes]> {
        let prebuilt_usable = self.k_planes.len() == self.k_codes.len()
            && self
                .k_planes
                .first()
                .is_none_or(|p| p.magnitude_bits() == magnitude_bits);
        if prebuilt_usable {
            Cow::Borrowed(&self.k_planes)
        } else {
            Cow::Owned(
                self.k_codes
                    .iter()
                    .map(|codes| KPlanes::new(codes, magnitude_bits))
                    .collect(),
            )
        }
    }
}

/// Raw event counts accumulated while simulating a head. These feed the
/// energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// DPU execution cycles summed over all DPUs (each cycle is one
    /// `d`-tap x `B`-bit MAC operation against the key buffer).
    pub qk_dpu_cycles: u64,
    /// Key-buffer read events (one per DPU cycle — the buffer streams `B`
    /// bits of each of the `d` K elements per cycle).
    pub key_buffer_reads: u64,
    /// Softmax evaluations (one per surviving score).
    pub softmax_ops: u64,
    /// Back-end `·V` MAC-array operations (one 64-wide operation per
    /// surviving score).
    pub v_mac_ops: u64,
    /// Value-buffer read events (one row of V per surviving score).
    pub value_buffer_reads: u64,
    /// Scores pushed into the Score/IDX FIFOs.
    pub fifo_pushes: u64,
}

/// Result of simulating one attention head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadSimResult {
    /// Total cycles to drain the head (front-end and back-end overlapped).
    pub total_cycles: u64,
    /// Cycles the front-end (QK-PU) was busy.
    pub frontend_busy_cycles: u64,
    /// Cycles of useful back-end (V-PU) work.
    pub backend_busy_cycles: u64,
    /// Cycles the front-end spent stalled waiting for the back-end.
    pub frontend_stall_cycles: u64,
    /// Back-end utilization: useful V-PU cycles over total cycles. Values
    /// above 1.0 cannot occur here; the Figure 13 sweep instead reports
    /// *demand* utilization which can exceed 1.0 when the V-PU is
    /// oversubscribed.
    pub vpu_utilization: f64,
    /// Demand placed on the V-PU relative to the front-end's unstalled
    /// completion time (can exceed 1.0; the quantity swept in Figure 13).
    pub vpu_demand: f64,
    /// Number of scores pruned (early-terminated or full-precision pruned).
    pub pruned_scores: u64,
    /// Number of scores that survived to the back-end.
    pub surviving_scores: u64,
    /// Histogram over K magnitude bits processed: entry `b` counts dot
    /// products that stopped after exactly `b` bits (index 0 unused).
    pub bits_histogram: Vec<u64>,
    /// Histogram over K magnitude bits processed for *pruned* scores only,
    /// used by the Figure 8 cumulative-pruning curve.
    pub pruned_bits_histogram: Vec<u64>,
    /// Event counts for the energy model.
    pub events: EventCounts,
}

impl HeadSimResult {
    /// Fraction of scores pruned.
    pub fn pruning_rate(&self) -> f64 {
        let total = self.pruned_scores + self.surviving_scores;
        if total == 0 {
            0.0
        } else {
            self.pruned_scores as f64 / total as f64
        }
    }

    /// Mean number of K magnitude bits processed per score.
    pub fn mean_bits_processed(&self) -> f64 {
        let total: u64 = self.bits_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .bits_histogram
            .iter()
            .enumerate()
            .map(|(bits, &count)| bits as u64 * count)
            .sum();
        weighted as f64 / total as f64
    }

    /// Cumulative fraction of scores already pruned once `bits` magnitude
    /// bits have been processed (the Figure 8 curve). Scores that were never
    /// pruned do not contribute.
    pub fn cumulative_pruning_by_bits(&self, bits: usize) -> f64 {
        let total = self.pruned_scores + self.surviving_scores;
        if total == 0 {
            return 0.0;
        }
        let pruned_by_now: u64 = self
            .pruned_bits_histogram
            .iter()
            .take(bits.saturating_add(1))
            .sum();
        pruned_by_now as f64 / total as f64
    }
}

/// Simulates one attention head on a tile, on the fast incremental
/// bit-plane kernel ([`QkKernel`]). Results are **bit-identical** to
/// [`simulate_head_reference`] — the kernel ≡ reference contract enforced
/// by the differential tests.
///
/// # Panics
///
/// Panics if the configuration is invalid or the workload is degenerate
/// (zero-length sequence).
pub fn simulate_head(workload: &HeadWorkload, config: &TileConfig) -> HeadSimResult {
    let kernel = QkKernel::new(*config); // validates the config once per head
    let planes = workload.k_planes_at(kernel.plan().magnitude_bits);
    let mut scratch = RowScratch::new();
    let threshold = workload.threshold_int;
    accumulate_head(workload, config, |q_row, out| {
        kernel.compute_row_into(q_row, &planes, threshold, &mut scratch, out);
    })
}

/// Simulates one attention head with the scalar per-pair [`QkDpu`] — the
/// retained reference implementation the kernel path is differentially
/// tested (and benchmarked) against. Same accounting, same results, no
/// incremental arithmetic.
///
/// # Panics
///
/// Panics if the configuration is invalid or the workload is degenerate
/// (zero-length sequence).
pub fn simulate_head_reference(workload: &HeadWorkload, config: &TileConfig) -> HeadSimResult {
    let dpu = QkDpu::new(*config); // validates the config once per head
    let plan = config.bit_serial_plan();
    // Pre-decompose the K matrix once (the hardware stores K in the key
    // buffer in bit-serial layout before the Q stream starts).
    let k_vectors: Vec<BitSerialVector> = workload
        .k_codes
        .iter()
        .map(|codes| BitSerialVector::new(codes, plan))
        .collect();
    let threshold = workload.threshold_int;
    accumulate_head(workload, config, |q_row, out| {
        out.clear();
        out.extend(k_vectors.iter().map(|k| dpu.compute(q_row, k, threshold)));
    })
}

/// The shared accounting loop behind both simulation paths: feeds every Q
/// row through `row_outcomes` (which fills one [`DotProductOutcome`] per K
/// column) and turns the outcomes into cycle timing, event counts, and
/// histograms. Keeping a single implementation here is what makes the
/// kernel ≡ reference equivalence a statement about outcomes only.
fn accumulate_head(
    workload: &HeadWorkload,
    config: &TileConfig,
    mut row_outcomes: impl FnMut(&[i32], &mut Vec<DotProductOutcome>),
) -> HeadSimResult {
    let s = workload.seq_len();
    assert!(s > 0, "workload must contain at least one query");
    let plan = config.bit_serial_plan();

    let mut events = EventCounts::default();
    let mut pruned_scores = 0u64;
    let mut surviving_scores = 0u64;
    let max_bits = plan.magnitude_bits as usize;
    let mut bits_histogram = vec![0u64; max_bits + 1];
    let mut pruned_bits_histogram = vec![0u64; max_bits + 1];

    // Per-row timing: the front-end processes row i while the back-end works
    // on the survivors of row i-1. The front-end cannot start row i+1 until
    // the back-end has caught up with row i's survivors (a single-row
    // hand-off simplification of the 512-deep Score/IDX FIFOs).
    let mut frontend_busy = 0u64;
    let mut backend_busy = 0u64;
    let mut stall = 0u64;
    let mut frontend_free_at = 0u64; // cycle when the front-end can start the next row
    let mut backend_free_at = 0u64; // cycle when the back-end finishes its queue
                                    // Softmax pipeline overhead per surviving score in the back-end
                                    // (exponent lookup + accumulate + weighted MAC) — one score per cycle,
                                    // matching the 1-D MAC array that consumes scores sequentially.
    let backend_cycles_per_score = 1u64;

    // Row-level buffers, allocated once per head and reused across rows.
    let mut dpu_cycles = vec![0u64; config.n_qk_dpu];
    let mut outcomes: Vec<DotProductOutcome> = Vec::with_capacity(workload.k_codes.len());

    for q_row in &workload.q_codes {
        // --- Front-end: distribute the s key columns over the N_QK DPUs.
        row_outcomes(q_row, &mut outcomes);
        dpu_cycles.fill(0);
        let mut row_survivors = 0u64;
        for (j, outcome) in outcomes.iter().enumerate() {
            let dpu_idx = j % config.n_qk_dpu;
            dpu_cycles[dpu_idx] += u64::from(outcome.cycles);
            events.qk_dpu_cycles += u64::from(outcome.cycles);
            events.key_buffer_reads += u64::from(outcome.cycles);
            bits_histogram[outcome.bits_processed as usize] += 1;
            if outcome.pruned {
                pruned_scores += 1;
                pruned_bits_histogram[outcome.bits_processed as usize] += 1;
            } else {
                surviving_scores += 1;
                row_survivors += 1;
                events.fifo_pushes += 1;
            }
        }
        let row_frontend_cycles = *dpu_cycles.iter().max().expect("at least one DPU");

        // --- Timing: the front-end may have to wait for the back-end to
        // drain the previous row before it can hand off this row's survivors.
        let start = frontend_free_at;
        let frontend_done = start + row_frontend_cycles;
        // Hand-off happens when both the front-end is done and the back-end
        // has finished the previous row.
        let handoff = frontend_done.max(backend_free_at);
        stall += handoff - frontend_done;
        let row_backend_cycles = row_survivors * backend_cycles_per_score;
        backend_free_at = handoff + row_backend_cycles;
        frontend_free_at = handoff;

        frontend_busy += row_frontend_cycles;
        backend_busy += row_backend_cycles;

        events.softmax_ops += row_survivors;
        events.v_mac_ops += row_survivors;
        events.value_buffer_reads += row_survivors;
    }

    let total_cycles = backend_free_at.max(frontend_free_at).max(1);
    let frontend_unstalled = frontend_busy.max(1);

    HeadSimResult {
        total_cycles,
        frontend_busy_cycles: frontend_busy,
        backend_busy_cycles: backend_busy,
        frontend_stall_cycles: stall,
        vpu_utilization: backend_busy as f64 / total_cycles as f64,
        vpu_demand: backend_busy as f64 / frontend_unstalled as f64,
        pruned_scores,
        surviving_scores,
        bits_histogram,
        pruned_bits_histogram,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_tensor::rng;

    fn workload(s: usize, d: usize, threshold: f32, seed: u64) -> HeadWorkload {
        let mut r = rng::seeded(seed);
        let q = rng::normal_matrix(&mut r, s, d, 0.0, 1.0);
        let k = rng::normal_matrix(&mut r, s, d, 0.0, 1.0);
        HeadWorkload::from_float(&q, &k, threshold, 12)
    }

    #[test]
    fn baseline_cycles_match_analytical_expectation() {
        // Baseline: one DPU, one cycle per dot product, no pruning, so the
        // front-end needs s cycles per row and the back-end s cycles per row.
        let w = workload(16, 32, 0.0, 1);
        let result = simulate_head(&w, &TileConfig::baseline());
        assert_eq!(result.pruned_scores, 0);
        assert_eq!(result.surviving_scores, (16 * 16) as u64);
        assert_eq!(result.frontend_busy_cycles, (16 * 16) as u64);
        assert_eq!(result.backend_busy_cycles, (16 * 16) as u64);
        // Front and back ends are perfectly balanced: total ≈ 2s + (s-1)*s.
        assert!(result.total_cycles >= result.frontend_busy_cycles);
    }

    #[test]
    fn leopard_prunes_and_is_faster_than_baseline() {
        let w = workload(32, 64, 0.3, 2);
        let base = simulate_head(&w, &TileConfig::baseline());
        let ae = simulate_head(&w, &TileConfig::ae_leopard());
        assert!(
            ae.pruned_scores > 0,
            "threshold 0.3 should prune many scores"
        );
        assert!(ae.pruning_rate() > 0.3);
        assert!(
            ae.total_cycles < base.total_cycles,
            "AE-LeOPArd ({}) should beat baseline ({})",
            ae.total_cycles,
            base.total_cycles
        );
    }

    #[test]
    fn hp_is_at_least_as_fast_as_ae() {
        let w = workload(32, 64, 0.2, 3);
        let ae = simulate_head(&w, &TileConfig::ae_leopard());
        let hp = simulate_head(&w, &TileConfig::hp_leopard());
        assert!(hp.total_cycles <= ae.total_cycles);
    }

    #[test]
    fn early_termination_reduces_dpu_cycles_compared_to_pruning_only() {
        let w = workload(32, 64, 0.3, 4);
        let pruning_only = simulate_head(&w, &TileConfig::pruning_only());
        let full = simulate_head(&w, &TileConfig::ae_leopard());
        assert!(full.events.qk_dpu_cycles < pruning_only.events.qk_dpu_cycles);
        // Both prune the same set of scores (the margin is exact).
        assert_eq!(full.pruned_scores, pruning_only.pruned_scores);
        assert!(full.mean_bits_processed() < pruning_only.mean_bits_processed());
    }

    #[test]
    fn event_counts_are_consistent_with_survivors() {
        let w = workload(24, 32, 0.2, 5);
        let r = simulate_head(&w, &TileConfig::ae_leopard());
        assert_eq!(r.events.softmax_ops, r.surviving_scores);
        assert_eq!(r.events.v_mac_ops, r.surviving_scores);
        assert_eq!(r.events.value_buffer_reads, r.surviving_scores);
        assert_eq!(r.events.fifo_pushes, r.surviving_scores);
        assert_eq!(r.pruned_scores + r.surviving_scores, (24 * 24) as u64);
        assert_eq!(r.events.qk_dpu_cycles, r.events.key_buffer_reads);
    }

    #[test]
    fn utilization_and_demand_are_sane() {
        let w = workload(16, 32, 0.0, 6);
        let r = simulate_head(&w, &TileConfig::ae_leopard());
        assert!(r.vpu_utilization > 0.0 && r.vpu_utilization <= 1.0);
        assert!(r.vpu_demand > 0.0);
        // More DPUs raise demand on the shared V-PU.
        let r12 = simulate_head(&w, &TileConfig::ae_leopard().with_n_qk(12));
        let r3 = simulate_head(&w, &TileConfig::ae_leopard().with_n_qk(3));
        assert!(r12.vpu_demand > r3.vpu_demand);
    }

    #[test]
    fn bits_histogram_sums_to_total_scores() {
        let w = workload(16, 32, 0.25, 7);
        let r = simulate_head(&w, &TileConfig::ae_leopard());
        let total: u64 = r.bits_histogram.iter().sum();
        assert_eq!(total, (16 * 16) as u64);
        assert!(r.mean_bits_processed() > 0.0);
        assert!(r.mean_bits_processed() <= 11.0);
    }

    #[test]
    fn higher_threshold_increases_pruning_and_reduces_cycles() {
        let w_low = workload(24, 64, 0.0, 8);
        let w_high = HeadWorkload {
            threshold_int: w_low.threshold_int + 100_000,
            ..w_low.clone()
        };
        let cfg = TileConfig::ae_leopard();
        let low = simulate_head(&w_low, &cfg);
        let high = simulate_head(&w_high, &cfg);
        assert!(high.pruning_rate() >= low.pruning_rate());
        assert!(high.total_cycles <= low.total_cycles);
    }

    #[test]
    fn sparse_threshold_matches_quantile_expectation() {
        // Threshold at 0 on zero-mean scores should prune roughly half.
        let w = workload(32, 64, 0.0, 9);
        let r = simulate_head(&w, &TileConfig::ae_leopard());
        let rate = r.pruning_rate();
        assert!((0.35..0.65).contains(&rate), "rate {rate} not near 0.5");
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_workload_panics() {
        let w = HeadWorkload {
            q_codes: vec![],
            k_codes: vec![],
            threshold_int: 0,
            head_dim: 4,
            k_planes: vec![],
        };
        let _ = simulate_head(&w, &TileConfig::ae_leopard());
    }

    #[test]
    fn kernel_path_is_bit_identical_to_reference_path() {
        // The kernel ≡ reference contract at head granularity: every
        // HeadSimResult field (cycles, histograms, events, utilization)
        // matches exactly, for every preset, on both sides of the pruning
        // threshold and across word-boundary head dimensions.
        for (s, d, threshold, seed) in [(24, 64, 0.3, 11), (16, 32, 0.0, 12), (9, 100, 0.5, 13)] {
            let w = workload(s, d, threshold, seed);
            for config in [
                TileConfig::baseline(),
                TileConfig::ae_leopard(),
                TileConfig::hp_leopard(),
                TileConfig::pruning_only(),
            ] {
                assert_eq!(
                    simulate_head(&w, &config),
                    simulate_head_reference(&w, &config),
                    "kernel/reference divergence on {} (s={s}, d={d})",
                    config.name
                );
            }
        }
    }

    #[test]
    fn kernel_path_rebuilds_planes_when_workload_carries_none() {
        // A hand-constructed workload (all fields are public) may omit the
        // prebuilt decomposition entirely; the kernel path must rebuild it
        // rather than silently simulating zero K columns.
        let built = workload(12, 32, 0.2, 31);
        let bare = HeadWorkload {
            k_planes: vec![],
            ..built.clone()
        };
        let cfg = TileConfig::ae_leopard();
        assert_eq!(
            simulate_head(&bare, &cfg),
            simulate_head_reference(&bare, &cfg)
        );
        assert_eq!(simulate_head(&bare, &cfg), simulate_head(&built, &cfg));
    }

    #[test]
    fn kernel_path_rebuilds_planes_on_magnitude_width_mismatch() {
        // A workload quantized to 8 bits simulated on a 12-bit tile: the
        // prebuilt 7-bit planes cannot serve the 11-bit plan, so the kernel
        // path re-decomposes — and still matches the reference exactly.
        let mut r = rng::seeded(21);
        let q = rng::normal_matrix(&mut r, 12, 32, 0.0, 1.0);
        let k = rng::normal_matrix(&mut r, 12, 32, 0.0, 1.0);
        let w = HeadWorkload::from_float(&q, &k, 0.1, 8);
        assert_eq!(w.k_planes[0].magnitude_bits(), 7);
        let cfg = TileConfig::ae_leopard();
        assert_eq!(simulate_head(&w, &cfg), simulate_head_reference(&w, &cfg));
    }
}
