//! Cycle-level tile simulation.
//!
//! The simulator models one attention head flowing through a LeOPArd tile:
//! every Q row is broadcast to the `N_QK` bit-serial DPUs, each DPU works
//! through its share of the K columns (terminating early where the margin
//! allows), surviving scores and their indices are pushed into the
//! Score/IDX FIFOs, and the single back-end V-PU consumes them — one softmax
//! evaluation plus one 64-wide `·V` MAC operation per surviving score. The
//! front-end of the *next* Q row overlaps with the back-end of the current
//! one; when the back-end is still busy the front-end stalls (Section 4.1).
//!
//! The simulator's outputs are cycle counts, event counts (for the energy
//! model), per-row utilization, and the bit-profile histogram behind Figure 8.
//!
//! Three interchangeable inner loops produce the per-pair dot-product
//! outcomes: [`simulate_head`] runs the batched bit-parallel v2 kernel
//! ([`crate::kernel_v2`], runtime-dispatched between a wide and a portable
//! path), [`simulate_head_pairwise`] the retained v1 per-pair kernel
//! ([`crate::kernel`]), and [`simulate_head_reference`] the scalar
//! per-element DPU ([`crate::dpu`]). Their results are bit-identical by
//! contract; all share one accounting loop, so the equivalence reduces to
//! the per-pair outcomes the differential tests pin down.
//!
//! The accounting loop itself operates at **shard** granularity: a
//! contiguous range of Q rows yields a [`TileShardSim`], and
//! [`merge_shards`] reconstructs the exact single-tile [`HeadSimResult`]
//! from any contiguous shard decomposition — the mechanism behind the
//! multi-tile scheduler in [`crate::schedule`] and its determinism
//! contract (partitioning never changes merged results).

use crate::config::TileConfig;
use crate::dpu::{DotProductOutcome, QkDpu};
use crate::kernel::{QkKernel, RowScratch};
use crate::kernel_v2::{KernelPath, PackedKeys, QkKernelV2, RowScratchV2};
use leopard_quant::bitserial::{BitSerialPlan, BitSerialVector};
use leopard_quant::fixed::QuantParams;
use leopard_quant::planes::KPlanes;
use leopard_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::{Deref, Range};
use std::sync::{Arc, Mutex};

/// A quantized attention-head workload ready for simulation.
#[derive(Debug, Clone)]
pub struct HeadWorkload {
    /// Quantized Q codes, one row per query token (`s x d`).
    pub q_codes: Vec<Vec<i32>>,
    /// Quantized K codes, one row per key token (`s x d`).
    pub k_codes: Vec<Vec<i32>>,
    /// Pruning threshold in the integer product domain.
    pub threshold_int: i64,
    /// Head dimension `d`.
    pub head_dim: usize,
    /// Packed bit-plane decomposition of `k_codes`, built **once** at
    /// construction and shared by every simulation unit of this head (the
    /// runtime cache hands the whole workload out behind an `Arc`, so the
    /// four per-configuration units never rebuild it).
    ///
    /// Invariant: this must stay in sync with `k_codes` — build workloads
    /// through [`HeadWorkload::from_codes`] / [`HeadWorkload::from_float`]
    /// rather than mutating `k_codes` in place. A struct literal may leave
    /// it empty (the kernel path then re-decomposes), but stale planes for
    /// *different* same-shape codes cannot be detected cheaply.
    pub k_planes: Vec<KPlanes>,
    /// Lazily-built derived layouts of `k_codes`, shared across simulation
    /// units: one K decomposition per *non-native* magnitude width (the
    /// `k_planes_at` cache — hot in `--param qk-bits` sweeps, which used to
    /// re-decompose on every call) and one [`PackedKeys`] operand pack per
    /// bit-serial plan (the batched v2 kernel's input). Cloning a workload
    /// keeps the cache warm (the entries are `Arc`-shared).
    ///
    /// Invariant: like `k_planes`, the cache must stay in sync with
    /// `k_codes` — build workloads through the constructors rather than
    /// mutating `k_codes` in place. A struct literal may start it empty
    /// ([`PlaneCache::default`]); entries are built on first use.
    pub plane_cache: PlaneCache,
}

/// The per-workload cache behind [`HeadWorkload::k_planes_at`] and
/// [`HeadWorkload::packed_keys_at`]: width-keyed K decompositions and
/// plan-keyed packed kernel operands, both behind `Arc` so concurrent
/// simulation units share one build.
#[derive(Debug, Default)]
pub struct PlaneCache {
    widths: Mutex<BTreeMap<u32, Arc<Vec<KPlanes>>>>,
    packed: Mutex<BTreeMap<(u32, u32), Arc<PackedKeys>>>,
}

impl Clone for PlaneCache {
    /// Clones the cache *contents* (cheap `Arc` clones), so a cloned
    /// workload starts warm instead of re-deriving every layout.
    fn clone(&self) -> Self {
        // lint:allow(panic-in-library, reason = "mutex poisoning requires a prior panic while holding the lock; the guarded sections only allocate and insert, so propagating the poison panic is the correct failure mode")
        let widths = self.widths.lock().unwrap().clone();
        // lint:allow(panic-in-library, reason = "mutex poisoning requires a prior panic while holding the lock; the guarded sections only allocate and insert, so propagating the poison panic is the correct failure mode")
        let packed = self.packed.lock().unwrap().clone();
        Self {
            widths: Mutex::new(widths),
            packed: Mutex::new(packed),
        }
    }
}

/// A borrowed-or-cached view of a head's K decomposition at some magnitude
/// width, returned by [`HeadWorkload::k_planes_at`]. Dereferences to
/// `[KPlanes]` either way.
#[derive(Debug)]
pub enum PlanesAt<'a> {
    /// The workload's prebuilt native-width planes, borrowed directly.
    Prebuilt(&'a [KPlanes]),
    /// A cached decomposition at a non-native width, shared behind an
    /// `Arc` (built at most once per width per workload).
    Cached(Arc<Vec<KPlanes>>),
}

impl Deref for PlanesAt<'_> {
    type Target = [KPlanes];

    fn deref(&self) -> &[KPlanes] {
        match self {
            PlanesAt::Prebuilt(planes) => planes,
            PlanesAt::Cached(planes) => planes,
        }
    }
}

impl HeadWorkload {
    /// Builds a workload from float Q/K matrices and a float threshold
    /// (expressed in the scaled score domain, i.e. after the `1/sqrt(d)`
    /// factor), quantizing both operands to `qk_bits`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes of `q` and `k` differ.
    pub fn from_float(q: &Matrix, k: &Matrix, threshold: f32, qk_bits: u32) -> Self {
        assert_eq!(q.shape(), k.shape(), "Q and K must share shape");
        let d = q.cols();
        let qp = QuantParams::calibrate(qk_bits, q);
        let kp = QuantParams::calibrate(qk_bits, k);
        let qq = qp.quantize_matrix(q);
        let kq = kp.quantize_matrix(k);
        // real_score = int_dot * product_scale / sqrt(d) ⇒ threshold_int.
        let score_scale = qq.product_scale(&kq) / (d as f32).sqrt();
        let threshold_int = (threshold / score_scale).round() as i64;
        Self::from_codes(
            (0..q.rows()).map(|r| qq.row(r).to_vec()).collect(),
            (0..k.rows()).map(|r| kq.row(r).to_vec()).collect(),
            threshold_int,
            d,
            qk_bits,
        )
    }

    /// Builds a workload from already-quantized codes, decomposing K into
    /// bit planes for the `qk_bits - 1` magnitude bits of the operand width.
    ///
    /// # Panics
    ///
    /// Panics if any K magnitude does not fit in `qk_bits - 1` bits.
    pub fn from_codes(
        q_codes: Vec<Vec<i32>>,
        k_codes: Vec<Vec<i32>>,
        threshold_int: i64,
        head_dim: usize,
        qk_bits: u32,
    ) -> Self {
        let k_planes = k_codes
            .iter()
            .map(|codes| KPlanes::new(codes, qk_bits - 1))
            .collect();
        Self {
            q_codes,
            k_codes,
            threshold_int,
            head_dim,
            k_planes,
            plane_cache: PlaneCache::default(),
        }
    }

    /// Sequence length of the workload.
    pub fn seq_len(&self) -> usize {
        self.q_codes.len()
    }

    /// The bit-plane decomposition at a given magnitude width: the prebuilt
    /// planes when the width matches (the hot path — every tile preset
    /// shares the 12-bit operand width), a **cached** decomposition
    /// otherwise (e.g. a workload quantized narrower than the simulated
    /// tile). Each non-native width is decomposed at most once per
    /// workload; repeated calls — hot in `--param qk-bits` sweeps, which
    /// used to silently re-decompose every time — return the same
    /// `Arc`-shared planes.
    pub fn k_planes_at(&self, magnitude_bits: u32) -> PlanesAt<'_> {
        let prebuilt_usable = self.k_planes.len() == self.k_codes.len()
            && self
                .k_planes
                .first()
                .is_none_or(|p| p.magnitude_bits() == magnitude_bits);
        if prebuilt_usable {
            PlanesAt::Prebuilt(&self.k_planes)
        } else {
            PlanesAt::Cached(self.cached_planes(magnitude_bits))
        }
    }

    fn cached_planes(&self, magnitude_bits: u32) -> Arc<Vec<KPlanes>> {
        // lint:allow(panic-in-library, reason = "mutex poisoning requires a prior panic while holding the lock; the guarded section only decomposes and inserts, so propagating the poison panic is the correct failure mode")
        let mut widths = self.plane_cache.widths.lock().unwrap();
        if let Some(hit) = widths.get(&magnitude_bits) {
            return Arc::clone(hit);
        }
        let built: Arc<Vec<KPlanes>> = Arc::new(
            self.k_codes
                .iter()
                .map(|codes| KPlanes::new(codes, magnitude_bits))
                .collect(),
        );
        widths.insert(magnitude_bits, Arc::clone(&built));
        built
    }

    /// The packed batched-kernel operands ([`PackedKeys`]) for a bit-serial
    /// plan, built at most once per `(magnitude width, bits per cycle)` per
    /// workload and shared behind an `Arc` — every row, shard, and repeated
    /// simulation of this head amortizes one pack.
    pub fn packed_keys_at(&self, plan: BitSerialPlan) -> Arc<PackedKeys> {
        let key = (plan.magnitude_bits, plan.bits_per_cycle);
        // lint:allow(panic-in-library, reason = "mutex poisoning requires a prior panic while holding the lock; the guarded section only packs and inserts, so propagating the poison panic is the correct failure mode")
        let mut packed = self.plane_cache.packed.lock().unwrap();
        if let Some(hit) = packed.get(&key) {
            return Arc::clone(hit);
        }
        let planes = match self.k_planes_at(plan.magnitude_bits) {
            PlanesAt::Prebuilt(prebuilt) => Arc::new(prebuilt.to_vec()),
            PlanesAt::Cached(cached) => cached,
        };
        let built = Arc::new(PackedKeys::pack(planes, plan));
        packed.insert(key, Arc::clone(&built));
        built
    }
}

/// Raw event counts accumulated while simulating a head. These feed the
/// energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// DPU execution cycles summed over all DPUs (each cycle is one
    /// `d`-tap x `B`-bit MAC operation against the key buffer).
    pub qk_dpu_cycles: u64,
    /// Key-buffer read events (one per DPU cycle — the buffer streams `B`
    /// bits of each of the `d` K elements per cycle).
    pub key_buffer_reads: u64,
    /// Softmax evaluations (one per surviving score).
    pub softmax_ops: u64,
    /// Back-end `·V` MAC-array operations (one 64-wide operation per
    /// surviving score).
    pub v_mac_ops: u64,
    /// Value-buffer read events (one row of V per surviving score).
    pub value_buffer_reads: u64,
    /// Scores pushed into the Score/IDX FIFOs.
    pub fifo_pushes: u64,
}

/// Result of simulating one attention head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadSimResult {
    /// Total cycles to drain the head (front-end and back-end overlapped).
    pub total_cycles: u64,
    /// Cycles the front-end (QK-PU) was busy.
    pub frontend_busy_cycles: u64,
    /// Cycles of useful back-end (V-PU) work.
    pub backend_busy_cycles: u64,
    /// Cycles the front-end spent stalled waiting for the back-end.
    pub frontend_stall_cycles: u64,
    /// Back-end utilization: useful V-PU cycles over total cycles. Values
    /// above 1.0 cannot occur here; the Figure 13 sweep instead reports
    /// *demand* utilization which can exceed 1.0 when the V-PU is
    /// oversubscribed.
    pub vpu_utilization: f64,
    /// Demand placed on the V-PU relative to the front-end's unstalled
    /// completion time (can exceed 1.0; the quantity swept in Figure 13).
    pub vpu_demand: f64,
    /// Number of scores pruned (early-terminated or full-precision pruned).
    pub pruned_scores: u64,
    /// Number of scores that survived to the back-end.
    pub surviving_scores: u64,
    /// Histogram over K magnitude bits processed: entry `b` counts dot
    /// products that stopped after exactly `b` bits (index 0 unused).
    pub bits_histogram: Vec<u64>,
    /// Histogram over K magnitude bits processed for *pruned* scores only,
    /// used by the Figure 8 cumulative-pruning curve.
    pub pruned_bits_histogram: Vec<u64>,
    /// Event counts for the energy model.
    pub events: EventCounts,
}

impl HeadSimResult {
    /// Fraction of scores pruned.
    pub fn pruning_rate(&self) -> f64 {
        let total = self.pruned_scores + self.surviving_scores;
        if total == 0 {
            0.0
        } else {
            self.pruned_scores as f64 / total as f64
        }
    }

    /// Mean number of K magnitude bits processed per score.
    pub fn mean_bits_processed(&self) -> f64 {
        let total: u64 = self.bits_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .bits_histogram
            .iter()
            .enumerate()
            .map(|(bits, &count)| bits as u64 * count)
            .sum();
        weighted as f64 / total as f64
    }

    /// Cumulative fraction of scores already pruned once `bits` magnitude
    /// bits have been processed (the Figure 8 curve). Scores that were never
    /// pruned do not contribute.
    pub fn cumulative_pruning_by_bits(&self, bits: usize) -> f64 {
        let total = self.pruned_scores + self.surviving_scores;
        if total == 0 {
            return 0.0;
        }
        let pruned_by_now: u64 = self
            .pruned_bits_histogram
            .iter()
            .take(bits.saturating_add(1))
            .sum();
        pruned_by_now as f64 / total as f64
    }
}

/// Simulates one attention head on a tile, on the batched bit-parallel v2
/// kernel ([`QkKernelV2`]) with the best dispatch path this machine
/// supports. Results are **bit-identical** to [`simulate_head_reference`]
/// (and to [`simulate_head_pairwise`], the retained v1 kernel path) — the
/// kernel ≡ reference contract enforced by the differential tests.
///
/// # Panics
///
/// Panics if the configuration is invalid or the workload is degenerate
/// (zero-length sequence).
pub fn simulate_head(workload: &HeadWorkload, config: &TileConfig) -> HeadSimResult {
    simulate_head_with_path(workload, config, KernelPath::detect())
}

/// [`simulate_head`] on an explicitly requested dispatch path (resolved
/// against the machine — see [`KernelPath::resolve`]). The dispatch-layer
/// differential tests use this to pin the wide and portable paths
/// byte-identical on the same inputs.
///
/// # Panics
///
/// Panics if the configuration is invalid or the workload is degenerate
/// (zero-length sequence).
pub fn simulate_head_with_path(
    workload: &HeadWorkload,
    config: &TileConfig,
    path: KernelPath,
) -> HeadSimResult {
    assert!(
        workload.seq_len() > 0,
        "workload must contain at least one query"
    );
    merge_shards(&[simulate_head_shard_with_path(
        workload,
        config,
        0..workload.seq_len(),
        path,
    )])
}

/// Simulates one contiguous shard of a head's Q rows on the incremental
/// bit-plane kernel — the unit of tile-level parallelism. Every row still
/// sees all K columns (only the Q dimension is partitioned across tiles),
/// so per-row accounting is identical to the whole-head paths; the shard
/// additionally records the boundary timing terms
/// ([`merge_shards`] needs) that make the merge of contiguous shards
/// bit-identical to simulating the head in one piece.
///
/// An empty `rows` range yields the identity shard (all-zero accounting).
///
/// # Panics
///
/// Panics if the configuration is invalid or `rows` does not lie within
/// the workload's sequence.
pub fn simulate_head_shard(
    workload: &HeadWorkload,
    config: &TileConfig,
    rows: Range<usize>,
) -> TileShardSim {
    simulate_head_shard_with_path(workload, config, rows, KernelPath::detect())
}

/// [`simulate_head_shard`] on an explicitly requested dispatch path — the
/// shard-granular counterpart of [`simulate_head_with_path`].
///
/// # Panics
///
/// Panics if the configuration is invalid or `rows` does not lie within
/// the workload's sequence.
pub fn simulate_head_shard_with_path(
    workload: &HeadWorkload,
    config: &TileConfig,
    rows: Range<usize>,
    path: KernelPath,
) -> TileShardSim {
    let kernel = QkKernelV2::with_path(*config, path); // validates the config once per shard
    let packed = workload.packed_keys_at(kernel.plan());
    let mut scratch = RowScratchV2::new();
    let threshold = workload.threshold_int;
    accumulate_rows(workload, config, rows, |q_row, out| {
        kernel.compute_row_into(q_row, &packed, threshold, &mut scratch, out);
    })
}

/// Simulates one attention head on the retained v1 per-pair kernel
/// ([`QkKernel`]) — kept as a differential oracle between the scalar
/// reference and the batched v2 path, and as the timing baseline
/// `kernel_bench` measures the v2 speedup against.
///
/// # Panics
///
/// Panics if the configuration is invalid or the workload is degenerate
/// (zero-length sequence).
pub fn simulate_head_pairwise(workload: &HeadWorkload, config: &TileConfig) -> HeadSimResult {
    assert!(
        workload.seq_len() > 0,
        "workload must contain at least one query"
    );
    merge_shards(&[simulate_head_shard_pairwise(
        workload,
        config,
        0..workload.seq_len(),
    )])
}

/// [`simulate_head_pairwise`] at shard granularity: the v1 per-pair kernel
/// inner loop under the shared accounting.
///
/// # Panics
///
/// Panics if the configuration is invalid or `rows` does not lie within
/// the workload's sequence.
pub fn simulate_head_shard_pairwise(
    workload: &HeadWorkload,
    config: &TileConfig,
    rows: Range<usize>,
) -> TileShardSim {
    let kernel = QkKernel::new(*config); // validates the config once per shard
    let planes = workload.k_planes_at(kernel.plan().magnitude_bits);
    let mut scratch = RowScratch::new();
    let threshold = workload.threshold_int;
    accumulate_rows(workload, config, rows, |q_row, out| {
        kernel.compute_row_into(q_row, &planes, threshold, &mut scratch, out);
    })
}

/// [`simulate_head_shard`] on the scalar per-pair reference DPU — the
/// shard-granular counterpart of [`simulate_head_reference`], used by the
/// tile-conformance tests to pin the partitioned path to the reference on
/// both axes (inner loop *and* partitioning) at once.
///
/// # Panics
///
/// Panics if the configuration is invalid or `rows` does not lie within
/// the workload's sequence.
pub fn simulate_head_shard_reference(
    workload: &HeadWorkload,
    config: &TileConfig,
    rows: Range<usize>,
) -> TileShardSim {
    let dpu = QkDpu::new(*config); // validates the config once per shard
    let plan = config.bit_serial_plan();
    let k_vectors: Vec<BitSerialVector> = workload
        .k_codes
        .iter()
        .map(|codes| BitSerialVector::new(codes, plan))
        .collect();
    let threshold = workload.threshold_int;
    accumulate_rows(workload, config, rows, |q_row, out| {
        out.clear();
        out.extend(k_vectors.iter().map(|k| dpu.compute(q_row, k, threshold)));
    })
}

/// Simulates one attention head with the scalar per-pair [`QkDpu`] — the
/// retained reference implementation the kernel path is differentially
/// tested (and benchmarked) against. Same accounting, same results, no
/// incremental arithmetic.
///
/// # Panics
///
/// Panics if the configuration is invalid or the workload is degenerate
/// (zero-length sequence).
pub fn simulate_head_reference(workload: &HeadWorkload, config: &TileConfig) -> HeadSimResult {
    assert!(
        workload.seq_len() > 0,
        "workload must contain at least one query"
    );
    merge_shards(&[simulate_head_shard_reference(
        workload,
        config,
        0..workload.seq_len(),
    )])
}

/// Softmax pipeline overhead per surviving score in the back-end (exponent
/// lookup + accumulate + weighted MAC) — one score per cycle, matching the
/// 1-D MAC array that consumes scores sequentially.
const BACKEND_CYCLES_PER_SCORE: u64 = 1;

/// Cycle/event accounting of one contiguous shard of a head's Q rows.
///
/// The per-row pipeline timing of [`HeadSimResult`] follows the recurrence
/// "front-end advance of row `i` = `max(fe_i, be_{i-1})`" (the front-end of
/// row `i` overlaps the back-end of row `i-1` and stalls when the back-end
/// is slower). The only state that crosses a row boundary is the previous
/// row's back-end cycles, so a contiguous shard can be summarized exactly
/// by its interior advance plus two boundary terms
/// ([`first_row_frontend_cycles`](Self::first_row_frontend_cycles) and
/// [`last_row_backend_cycles`](Self::last_row_backend_cycles)) — which is
/// what lets [`merge_shards`] reconstruct the single-tile result
/// bit-identically from independently-simulated shards, in any execution
/// order. All counter fields are plain sums over the shard's rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileShardSim {
    /// The contiguous Q-row range this shard covers (empty ranges are
    /// legal: a tile left without rows contributes the identity shard).
    pub rows: Range<usize>,
    /// Σ per-row front-end cycles (the busiest DPU's cycles, per row).
    pub frontend_busy_cycles: u64,
    /// Σ per-row back-end cycles (one per surviving score).
    pub backend_busy_cycles: u64,
    /// Event counts over the shard's rows.
    pub events: EventCounts,
    /// Scores pruned within the shard.
    pub pruned_scores: u64,
    /// Scores surviving within the shard.
    pub surviving_scores: u64,
    /// Histogram over K magnitude bits processed (see
    /// [`HeadSimResult::bits_histogram`]).
    pub bits_histogram: Vec<u64>,
    /// Histogram over K magnitude bits processed for pruned scores only.
    pub pruned_bits_histogram: Vec<u64>,
    /// Front-end cycles of the shard's first row (0 when empty) — the term
    /// that interacts with the previous shard's trailing back-end work.
    pub first_row_frontend_cycles: u64,
    /// Back-end cycles of the shard's last row (0 when empty) — the term
    /// the next shard's first row overlaps with.
    pub last_row_backend_cycles: u64,
    /// Σ over the shard's rows *after the first* of
    /// `max(fe_i, be_{i-1})` — the front-end advance of the interior rows
    /// under the pipeline recurrence.
    pub interior_advance_cycles: u64,
}

impl TileShardSim {
    /// Whether the shard covers no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Pipeline cycles this shard needs when it runs *alone* on one tile
    /// from cycle 0 — the quantity whose maximum over a head's shards is
    /// the multi-tile makespan. Zero for an empty shard; matches
    /// [`HeadSimResult::total_cycles`] exactly when the shard covers the
    /// whole head.
    pub fn standalone_cycles(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.first_row_frontend_cycles
                + self.interior_advance_cycles
                + self.last_row_backend_cycles)
                .max(1)
        }
    }

    /// How the shard's dot products left the bit-serial reveal window,
    /// split by where the reveal loop stopped: pruned strictly before the
    /// full magnitude width (the early-termination win), pruned only once
    /// every magnitude bit was revealed, or surviving to the back-end.
    /// The three classes partition `pruned_scores + surviving_scores`.
    pub fn outcome_mix(&self) -> OutcomeMix {
        let full_precision_pruned = self.pruned_bits_histogram.last().copied().unwrap_or(0);
        OutcomeMix {
            early_terminated: self.pruned_scores - full_precision_pruned,
            full_precision_pruned,
            surviving: self.surviving_scores,
        }
    }
}

/// Reveal-window outcome mix of a shard's dot products — see
/// [`TileShardSim::outcome_mix`]. Exported as telemetry counters by the
/// runtime so the pruning behaviour behind a speedup number is visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeMix {
    /// Scores pruned before the full magnitude width was revealed.
    pub early_terminated: u64,
    /// Scores pruned only at the full magnitude width.
    pub full_precision_pruned: u64,
    /// Scores that survived the threshold and reached the back-end.
    pub surviving: u64,
}

impl OutcomeMix {
    /// Total scores across the three classes.
    pub fn total(&self) -> u64 {
        self.early_terminated + self.full_precision_pruned + self.surviving
    }
}

/// Merges contiguous shard accountings into the **exact** single-tile
/// [`HeadSimResult`]: the result is bit-identical — every field, including
/// cycle totals, stalls, and utilization — to simulating the same rows in
/// one piece. Counters and histograms are sums; the timing fields replay
/// the pipeline recurrence across the shard boundaries (see
/// [`TileShardSim`]). Empty shards are identities and may appear anywhere.
///
/// This is the merge/determinism contract of the tile scheduler
/// (`crate::schedule`): partitioning a head across tiles changes *where*
/// rows execute and what the per-tile makespan is, never the merged
/// result.
///
/// # Panics
///
/// Panics if no shard covers any row, if the non-empty shards are not
/// contiguous in ascending row order, or if histogram widths disagree
/// (shards simulated under different tile configurations).
pub fn merge_shards(shards: &[TileShardSim]) -> HeadSimResult {
    let mut events = EventCounts::default();
    let mut pruned_scores = 0u64;
    let mut surviving_scores = 0u64;
    let mut bits_histogram: Vec<u64> = Vec::new();
    let mut pruned_bits_histogram: Vec<u64> = Vec::new();
    let mut frontend_busy = 0u64;
    let mut backend_busy = 0u64;
    // The pipeline state the recurrence threads across rows: the front-end
    // hand-off clock and the previous row's back-end cycles.
    let mut frontend_free = 0u64;
    let mut prev_backend = 0u64;
    let mut rows_merged = 0usize;
    let mut expected_start: Option<usize> = None;

    for shard in shards {
        if bits_histogram.is_empty() {
            bits_histogram = vec![0; shard.bits_histogram.len()];
            pruned_bits_histogram = vec![0; shard.pruned_bits_histogram.len()];
        }
        assert_eq!(
            shard.bits_histogram.len(),
            bits_histogram.len(),
            "shards were simulated under different bit-serial plans"
        );
        for (slot, &count) in bits_histogram.iter_mut().zip(&shard.bits_histogram) {
            *slot += count;
        }
        for (slot, &count) in pruned_bits_histogram
            .iter_mut()
            .zip(&shard.pruned_bits_histogram)
        {
            *slot += count;
        }
        events.qk_dpu_cycles += shard.events.qk_dpu_cycles;
        events.key_buffer_reads += shard.events.key_buffer_reads;
        events.softmax_ops += shard.events.softmax_ops;
        events.v_mac_ops += shard.events.v_mac_ops;
        events.value_buffer_reads += shard.events.value_buffer_reads;
        events.fifo_pushes += shard.events.fifo_pushes;
        pruned_scores += shard.pruned_scores;
        surviving_scores += shard.surviving_scores;
        frontend_busy += shard.frontend_busy_cycles;
        backend_busy += shard.backend_busy_cycles;

        if shard.is_empty() {
            continue;
        }
        if let Some(expected) = expected_start {
            assert_eq!(
                shard.rows.start, expected,
                "tile shards must be contiguous in ascending row order"
            );
        }
        expected_start = Some(shard.rows.end);
        rows_merged += shard.rows.len();
        // The shard's first row overlaps the previous shard's trailing
        // back-end work; its interior rows already carry their advance.
        frontend_free +=
            shard.first_row_frontend_cycles.max(prev_backend) + shard.interior_advance_cycles;
        prev_backend = shard.last_row_backend_cycles;
    }

    assert!(rows_merged > 0, "merge requires at least one simulated row");
    let total_cycles = (frontend_free + prev_backend).max(1);
    let frontend_unstalled = frontend_busy.max(1);
    HeadSimResult {
        total_cycles,
        frontend_busy_cycles: frontend_busy,
        backend_busy_cycles: backend_busy,
        // The front-end clock advances by fe_i + stall_i per row, so the
        // total stall is the advance beyond the busy time.
        frontend_stall_cycles: frontend_free - frontend_busy,
        vpu_utilization: backend_busy as f64 / total_cycles as f64,
        vpu_demand: backend_busy as f64 / frontend_unstalled as f64,
        pruned_scores,
        surviving_scores,
        bits_histogram,
        pruned_bits_histogram,
        events,
    }
}

/// The shared accounting loop behind every simulation path: feeds each Q
/// row in `rows` through `row_outcomes` (which fills one
/// [`DotProductOutcome`] per K column) and turns the outcomes into cycle
/// timing, event counts, and histograms for that shard. Keeping a single
/// implementation here is what makes the kernel ≡ reference equivalence a
/// statement about outcomes only — and the tile ≡ single-tile equivalence
/// a statement about [`merge_shards`] only.
fn accumulate_rows(
    workload: &HeadWorkload,
    config: &TileConfig,
    rows: Range<usize>,
    mut row_outcomes: impl FnMut(&[i32], &mut Vec<DotProductOutcome>),
) -> TileShardSim {
    assert!(
        rows.start <= rows.end && rows.end <= workload.seq_len(),
        "shard rows {rows:?} outside the workload's {} queries",
        workload.seq_len()
    );
    let plan = config.bit_serial_plan();
    let max_bits = plan.magnitude_bits as usize;
    let mut shard = TileShardSim {
        rows: rows.clone(),
        frontend_busy_cycles: 0,
        backend_busy_cycles: 0,
        events: EventCounts::default(),
        pruned_scores: 0,
        surviving_scores: 0,
        bits_histogram: vec![0u64; max_bits + 1],
        pruned_bits_histogram: vec![0u64; max_bits + 1],
        first_row_frontend_cycles: 0,
        last_row_backend_cycles: 0,
        interior_advance_cycles: 0,
    };

    // Row-level buffers, allocated once per shard and reused across rows.
    let mut dpu_cycles = vec![0u64; config.n_qk_dpu];
    let mut outcomes: Vec<DotProductOutcome> = Vec::with_capacity(workload.k_codes.len());
    let mut prev_backend = 0u64;

    for (offset, q_row) in workload.q_codes[rows].iter().enumerate() {
        // --- Front-end: distribute the s key columns over the N_QK DPUs.
        row_outcomes(q_row, &mut outcomes);
        dpu_cycles.fill(0);
        let mut row_survivors = 0u64;
        for (j, outcome) in outcomes.iter().enumerate() {
            let dpu_idx = j % config.n_qk_dpu;
            dpu_cycles[dpu_idx] += u64::from(outcome.cycles);
            shard.events.qk_dpu_cycles += u64::from(outcome.cycles);
            shard.events.key_buffer_reads += u64::from(outcome.cycles);
            shard.bits_histogram[outcome.bits_processed as usize] += 1;
            if outcome.pruned {
                shard.pruned_scores += 1;
                shard.pruned_bits_histogram[outcome.bits_processed as usize] += 1;
            } else {
                shard.surviving_scores += 1;
                row_survivors += 1;
                shard.events.fifo_pushes += 1;
            }
        }
        let row_frontend_cycles = *dpu_cycles.iter().max().expect("at least one DPU"); // lint:allow(panic-in-library, reason = "TileConfig validation guarantees at least one DPU lane")
        let row_backend_cycles = row_survivors * BACKEND_CYCLES_PER_SCORE;

        // --- Timing: the front-end of this row overlaps the back-end of
        // the previous one, so its advance is max(fe_i, be_{i-1}). The
        // first row's advance depends on the *previous shard's* trailing
        // back-end work, which only the merge knows — record its fe as a
        // boundary term instead.
        if offset == 0 {
            shard.first_row_frontend_cycles = row_frontend_cycles;
        } else {
            shard.interior_advance_cycles += row_frontend_cycles.max(prev_backend);
        }
        prev_backend = row_backend_cycles;

        shard.frontend_busy_cycles += row_frontend_cycles;
        shard.backend_busy_cycles += row_backend_cycles;
        shard.events.softmax_ops += row_survivors;
        shard.events.v_mac_ops += row_survivors;
        shard.events.value_buffer_reads += row_survivors;
    }
    shard.last_row_backend_cycles = prev_backend;
    shard
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_tensor::rng;

    fn workload(s: usize, d: usize, threshold: f32, seed: u64) -> HeadWorkload {
        let mut r = rng::seeded(seed);
        let q = rng::normal_matrix(&mut r, s, d, 0.0, 1.0);
        let k = rng::normal_matrix(&mut r, s, d, 0.0, 1.0);
        HeadWorkload::from_float(&q, &k, threshold, 12)
    }

    #[test]
    fn baseline_cycles_match_analytical_expectation() {
        // Baseline: one DPU, one cycle per dot product, no pruning, so the
        // front-end needs s cycles per row and the back-end s cycles per row.
        let w = workload(16, 32, 0.0, 1);
        let result = simulate_head(&w, &TileConfig::baseline());
        assert_eq!(result.pruned_scores, 0);
        assert_eq!(result.surviving_scores, (16 * 16) as u64);
        assert_eq!(result.frontend_busy_cycles, (16 * 16) as u64);
        assert_eq!(result.backend_busy_cycles, (16 * 16) as u64);
        // Front and back ends are perfectly balanced: total ≈ 2s + (s-1)*s.
        assert!(result.total_cycles >= result.frontend_busy_cycles);
    }

    #[test]
    fn leopard_prunes_and_is_faster_than_baseline() {
        let w = workload(32, 64, 0.3, 2);
        let base = simulate_head(&w, &TileConfig::baseline());
        let ae = simulate_head(&w, &TileConfig::ae_leopard());
        assert!(
            ae.pruned_scores > 0,
            "threshold 0.3 should prune many scores"
        );
        assert!(ae.pruning_rate() > 0.3);
        assert!(
            ae.total_cycles < base.total_cycles,
            "AE-LeOPArd ({}) should beat baseline ({})",
            ae.total_cycles,
            base.total_cycles
        );
    }

    #[test]
    fn hp_is_at_least_as_fast_as_ae() {
        let w = workload(32, 64, 0.2, 3);
        let ae = simulate_head(&w, &TileConfig::ae_leopard());
        let hp = simulate_head(&w, &TileConfig::hp_leopard());
        assert!(hp.total_cycles <= ae.total_cycles);
    }

    #[test]
    fn early_termination_reduces_dpu_cycles_compared_to_pruning_only() {
        let w = workload(32, 64, 0.3, 4);
        let pruning_only = simulate_head(&w, &TileConfig::pruning_only());
        let full = simulate_head(&w, &TileConfig::ae_leopard());
        assert!(full.events.qk_dpu_cycles < pruning_only.events.qk_dpu_cycles);
        // Both prune the same set of scores (the margin is exact).
        assert_eq!(full.pruned_scores, pruning_only.pruned_scores);
        assert!(full.mean_bits_processed() < pruning_only.mean_bits_processed());
    }

    #[test]
    fn event_counts_are_consistent_with_survivors() {
        let w = workload(24, 32, 0.2, 5);
        let r = simulate_head(&w, &TileConfig::ae_leopard());
        assert_eq!(r.events.softmax_ops, r.surviving_scores);
        assert_eq!(r.events.v_mac_ops, r.surviving_scores);
        assert_eq!(r.events.value_buffer_reads, r.surviving_scores);
        assert_eq!(r.events.fifo_pushes, r.surviving_scores);
        assert_eq!(r.pruned_scores + r.surviving_scores, (24 * 24) as u64);
        assert_eq!(r.events.qk_dpu_cycles, r.events.key_buffer_reads);
    }

    #[test]
    fn utilization_and_demand_are_sane() {
        let w = workload(16, 32, 0.0, 6);
        let r = simulate_head(&w, &TileConfig::ae_leopard());
        assert!(r.vpu_utilization > 0.0 && r.vpu_utilization <= 1.0);
        assert!(r.vpu_demand > 0.0);
        // More DPUs raise demand on the shared V-PU.
        let r12 = simulate_head(&w, &TileConfig::ae_leopard().with_n_qk(12));
        let r3 = simulate_head(&w, &TileConfig::ae_leopard().with_n_qk(3));
        assert!(r12.vpu_demand > r3.vpu_demand);
    }

    #[test]
    fn outcome_mix_partitions_every_score() {
        let w = workload(24, 32, 0.25, 9);
        let shard = simulate_head_shard(&w, &TileConfig::ae_leopard(), 0..24);
        let mix = shard.outcome_mix();
        assert_eq!(mix.total(), (24 * 24) as u64);
        assert_eq!(
            mix.early_terminated + mix.full_precision_pruned,
            shard.pruned_scores
        );
        assert_eq!(mix.surviving, shard.surviving_scores);
        assert!(
            mix.early_terminated > 0,
            "threshold 0.25 should stop some reveals early"
        );
        // The pruning-only configuration cannot terminate early: every
        // pruned score pays the full magnitude width.
        let po = simulate_head_shard(&w, &TileConfig::pruning_only(), 0..24).outcome_mix();
        assert_eq!(po.early_terminated, 0);
        assert_eq!(po.full_precision_pruned + po.surviving, mix.total());
    }

    #[test]
    fn bits_histogram_sums_to_total_scores() {
        let w = workload(16, 32, 0.25, 7);
        let r = simulate_head(&w, &TileConfig::ae_leopard());
        let total: u64 = r.bits_histogram.iter().sum();
        assert_eq!(total, (16 * 16) as u64);
        assert!(r.mean_bits_processed() > 0.0);
        assert!(r.mean_bits_processed() <= 11.0);
    }

    #[test]
    fn higher_threshold_increases_pruning_and_reduces_cycles() {
        let w_low = workload(24, 64, 0.0, 8);
        let w_high = HeadWorkload {
            threshold_int: w_low.threshold_int + 100_000,
            ..w_low.clone()
        };
        let cfg = TileConfig::ae_leopard();
        let low = simulate_head(&w_low, &cfg);
        let high = simulate_head(&w_high, &cfg);
        assert!(high.pruning_rate() >= low.pruning_rate());
        assert!(high.total_cycles <= low.total_cycles);
    }

    #[test]
    fn sparse_threshold_matches_quantile_expectation() {
        // Threshold at 0 on zero-mean scores should prune roughly half.
        let w = workload(32, 64, 0.0, 9);
        let r = simulate_head(&w, &TileConfig::ae_leopard());
        let rate = r.pruning_rate();
        assert!((0.35..0.65).contains(&rate), "rate {rate} not near 0.5");
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_workload_panics() {
        let w = HeadWorkload {
            q_codes: vec![],
            k_codes: vec![],
            threshold_int: 0,
            head_dim: 4,
            k_planes: vec![],
            plane_cache: PlaneCache::default(),
        };
        let _ = simulate_head(&w, &TileConfig::ae_leopard());
    }

    #[test]
    fn kernel_path_is_bit_identical_to_reference_path() {
        // The kernel ≡ reference contract at head granularity: every
        // HeadSimResult field (cycles, histograms, events, utilization)
        // matches exactly, for every preset, on both sides of the pruning
        // threshold and across word-boundary head dimensions.
        for (s, d, threshold, seed) in [(24, 64, 0.3, 11), (16, 32, 0.0, 12), (9, 100, 0.5, 13)] {
            let w = workload(s, d, threshold, seed);
            for config in [
                TileConfig::baseline(),
                TileConfig::ae_leopard(),
                TileConfig::hp_leopard(),
                TileConfig::pruning_only(),
            ] {
                assert_eq!(
                    simulate_head(&w, &config),
                    simulate_head_reference(&w, &config),
                    "kernel/reference divergence on {} (s={s}, d={d})",
                    config.name
                );
            }
        }
    }

    #[test]
    fn merged_shards_reconstruct_the_whole_head_exactly() {
        // Splitting the rows at any boundary — including degenerate empty
        // shards — merges back to the bit-identical whole-head result.
        let w = workload(17, 48, 0.3, 41);
        for config in [TileConfig::ae_leopard(), TileConfig::baseline()] {
            let whole = simulate_head(&w, &config);
            for split in [0usize, 1, 8, 16, 17] {
                let shards = [
                    simulate_head_shard(&w, &config, 0..split),
                    simulate_head_shard(&w, &config, split..17),
                ];
                assert_eq!(
                    merge_shards(&shards),
                    whole,
                    "split at {split} diverged on {}",
                    config.name
                );
            }
            // Shard-granular reference path agrees too.
            let shards = [
                simulate_head_shard_reference(&w, &config, 0..5),
                simulate_head_shard_reference(&w, &config, 5..17),
            ];
            assert_eq!(merge_shards(&shards), whole);
        }
    }

    #[test]
    fn empty_shard_is_the_identity() {
        let w = workload(9, 32, 0.2, 42);
        let cfg = TileConfig::ae_leopard();
        let empty = simulate_head_shard(&w, &cfg, 4..4);
        assert!(empty.is_empty());
        assert_eq!(empty.standalone_cycles(), 0);
        assert_eq!(empty.frontend_busy_cycles, 0);
        assert_eq!(empty.events, EventCounts::default());
        // A whole-head shard's standalone cycles equal the head total.
        let whole = simulate_head_shard(&w, &cfg, 0..9);
        assert_eq!(
            whole.standalone_cycles(),
            simulate_head(&w, &cfg).total_cycles
        );
    }

    #[test]
    #[should_panic(expected = "contiguous in ascending row order")]
    fn non_contiguous_shards_are_rejected() {
        let w = workload(8, 32, 0.2, 43);
        let cfg = TileConfig::ae_leopard();
        let shards = [
            simulate_head_shard(&w, &cfg, 0..3),
            simulate_head_shard(&w, &cfg, 5..8),
        ];
        let _ = merge_shards(&shards);
    }

    #[test]
    #[should_panic(expected = "at least one simulated row")]
    fn merging_only_empty_shards_panics() {
        let w = workload(8, 32, 0.2, 44);
        let cfg = TileConfig::ae_leopard();
        let _ = merge_shards(&[simulate_head_shard(&w, &cfg, 0..0)]);
    }

    #[test]
    fn kernel_path_rebuilds_planes_when_workload_carries_none() {
        // A hand-constructed workload (all fields are public) may omit the
        // prebuilt decomposition entirely; the kernel path must rebuild it
        // rather than silently simulating zero K columns.
        let built = workload(12, 32, 0.2, 31);
        let bare = HeadWorkload {
            k_planes: vec![],
            ..built.clone()
        };
        let cfg = TileConfig::ae_leopard();
        assert_eq!(
            simulate_head(&bare, &cfg),
            simulate_head_reference(&bare, &cfg)
        );
        assert_eq!(simulate_head(&bare, &cfg), simulate_head(&built, &cfg));
    }

    #[test]
    fn non_native_width_decomposition_is_cached_across_calls() {
        // The k_planes_at regression: a width mismatch used to silently
        // re-decompose on *every* call. The second call must hit the cache
        // and return the same Arc-shared decomposition.
        let w = workload(8, 16, 0.2, 51);
        assert_eq!(w.k_planes[0].magnitude_bits(), 11);
        let first = match w.k_planes_at(13) {
            PlanesAt::Cached(planes) => planes,
            PlanesAt::Prebuilt(_) => panic!("width 13 is not the native width"),
        };
        let second = match w.k_planes_at(13) {
            PlanesAt::Cached(planes) => planes,
            PlanesAt::Prebuilt(_) => panic!("width 13 is not the native width"),
        };
        assert!(
            Arc::ptr_eq(&first, &second),
            "second k_planes_at call must hit the per-width cache"
        );
        assert_eq!(first[0].magnitude_bits(), 13);
        // The native width still borrows the prebuilt planes directly.
        assert!(matches!(w.k_planes_at(11), PlanesAt::Prebuilt(_)));
        // A cloned workload keeps the cache warm (Arc-shared entries).
        let cloned = w.clone();
        let third = match cloned.k_planes_at(13) {
            PlanesAt::Cached(planes) => planes,
            PlanesAt::Prebuilt(_) => panic!("width 13 is not the native width"),
        };
        assert!(Arc::ptr_eq(&first, &third));
    }

    #[test]
    fn packed_keys_are_cached_per_plan() {
        let w = workload(8, 16, 0.2, 52);
        let plan = TileConfig::ae_leopard().bit_serial_plan();
        let first = w.packed_keys_at(plan);
        let second = w.packed_keys_at(plan);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second packed_keys_at call must hit the per-plan cache"
        );
        // A different granularity packs (and caches) separately.
        let other = w.packed_keys_at(
            TileConfig::ae_leopard()
                .with_serial_bits(1)
                .bit_serial_plan(),
        );
        assert!(!Arc::ptr_eq(&first, &other));
        assert!(Arc::ptr_eq(&other, &w.packed_keys_at(other.plan())));
    }

    #[test]
    fn forced_paths_and_pairwise_kernel_agree_with_reference() {
        // Head-level spot check of the dispatch contract (the full sweep
        // lives in tests/kernel_dispatch.rs): wide, portable, the retained
        // v1 per-pair kernel, and the scalar DPU all agree exactly.
        let w = workload(23, 33, 0.3, 53);
        for config in [TileConfig::ae_leopard(), TileConfig::pruning_only()] {
            let reference = simulate_head_reference(&w, &config);
            assert_eq!(
                simulate_head_with_path(&w, &config, KernelPath::Wide),
                reference
            );
            assert_eq!(
                simulate_head_with_path(&w, &config, KernelPath::Portable),
                reference
            );
            assert_eq!(simulate_head_pairwise(&w, &config), reference);
        }
    }

    #[test]
    fn kernel_path_rebuilds_planes_on_magnitude_width_mismatch() {
        // A workload quantized to 8 bits simulated on a 12-bit tile: the
        // prebuilt 7-bit planes cannot serve the 11-bit plan, so the kernel
        // path re-decomposes — and still matches the reference exactly.
        let mut r = rng::seeded(21);
        let q = rng::normal_matrix(&mut r, 12, 32, 0.0, 1.0);
        let k = rng::normal_matrix(&mut r, 12, 32, 0.0, 1.0);
        let w = HeadWorkload::from_float(&q, &k, 0.1, 8);
        assert_eq!(w.k_planes[0].magnitude_bits(), 7);
        let cfg = TileConfig::ae_leopard();
        assert_eq!(simulate_head(&w, &cfg), simulate_head_reference(&w, &cfg));
    }
}
