//! The bit-serial QK dot-product unit with conservative-margin early
//! termination (Sections 3.2 and 4.2, Figures 3 and 5).
//!
//! Each QK-DPU multiplies a full-precision Q vector against one K vector
//! whose magnitudes arrive `B` bits per cycle, MSB first. After every cycle
//! the unit updates a conservative margin — the largest amount the remaining
//! unseen K bits could still add to the dot product, counting only the
//! element pairs whose signs agree — and compares `partial_sum + margin`
//! against the learned threshold. If the bound falls below the threshold the
//! score provably cannot survive pruning, so the remaining cycles (and the
//! corresponding key-buffer reads) are skipped. The mechanism is exact: a
//! score that would have survived is never terminated.

use crate::config::TileConfig;
use leopard_quant::bitserial::BitSerialVector;
use serde::{Deserialize, Serialize};

/// Outcome of one dot-product computation in a QK-DPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DotProductOutcome {
    /// Cycles the DPU spent on this dot product (including the cycle on which
    /// termination was detected).
    pub cycles: u32,
    /// K magnitude bits actually processed.
    pub bits_processed: u32,
    /// Whether the computation terminated before all bits were processed.
    pub terminated_early: bool,
    /// Whether the score was pruned (below threshold). Early termination
    /// implies pruning; a fully computed score can also end up pruned.
    pub pruned: bool,
    /// The integer partial sum at the point the DPU stopped. For unpruned
    /// scores this is the exact integer dot product.
    pub partial_sum: i64,
}

/// A software model of one bit-serial QK dot-product unit.
#[derive(Debug, Clone)]
pub struct QkDpu {
    config: TileConfig,
}

impl QkDpu {
    /// Creates a DPU model for a tile configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: TileConfig) -> Self {
        config
            .validate()
            // lint:allow(panic-in-library, reason = "constructor contract documented under # Panics; configs are validated at parse time and invalid ones here are programmer errors")
            .unwrap_or_else(|e| panic!("invalid tile config: {e}"));
        Self { config }
    }

    /// The tile configuration this DPU follows.
    pub fn config(&self) -> &TileConfig {
        &self.config
    }

    /// Computes one dot product between a full-precision Q row and a
    /// bit-serial K column, terminating early when the margin proves the
    /// score cannot reach `threshold` (in the integer product domain).
    ///
    /// When the configuration disables early termination the full dot product
    /// is always computed; when it disables pruning entirely the threshold is
    /// ignored and the score is never marked pruned.
    ///
    /// # Panics
    ///
    /// Panics if `q_codes.len()` differs from the K vector length.
    pub fn compute(
        &self,
        q_codes: &[i32],
        k: &BitSerialVector,
        threshold: i64,
    ) -> DotProductOutcome {
        assert_eq!(q_codes.len(), k.len(), "Q and K dimension mismatch");
        let plan = k.plan();
        let total_cycles = if self.config.serial_bits >= self.config.k_bits {
            1
        } else {
            plan.total_cycles()
        };

        // Fully parallel (baseline) mode: one cycle, exact result.
        if self.config.serial_bits >= self.config.k_bits {
            let exact = k.full_dot(q_codes);
            let pruned = self.config.pruning_enabled && exact < threshold;
            return DotProductOutcome {
                cycles: 1,
                bits_processed: plan.magnitude_bits,
                terminated_early: false,
                pruned,
                partial_sum: exact,
            };
        }

        let early_termination = self.config.pruning_enabled && self.config.early_termination;
        for cycle in 1..=total_cycles {
            let partial = k.partial_dot(q_codes, cycle);
            if early_termination {
                let margin = k.margin(q_codes, cycle);
                if partial + margin < threshold {
                    return DotProductOutcome {
                        cycles: cycle,
                        bits_processed: plan.bits_after(cycle),
                        terminated_early: cycle < total_cycles,
                        pruned: true,
                        partial_sum: partial,
                    };
                }
            }
            if cycle == total_cycles {
                let pruned = self.config.pruning_enabled && partial < threshold;
                return DotProductOutcome {
                    cycles: total_cycles,
                    bits_processed: plan.magnitude_bits,
                    terminated_early: false,
                    pruned,
                    partial_sum: partial,
                };
            }
        }
        unreachable!("loop always returns on the last cycle")
    }
}

/// Reproduces the worked example of Figure 3: a four-element dot product with
/// `Q = [9, -5, 7, -2]`, `K = [+1/8, -7/8, -4/8, +2/8]` (three magnitude bits
/// per element), a threshold of 5, and one magnitude bit per cycle. Returns
/// the paper's per-cycle table as `(partial_sum, margin, terminate)` rows:
/// the first row is the sign-processing / margin-initialisation cycle
/// (`P = 0`, `M = 12.25`), the remaining rows follow each magnitude bit.
pub fn figure3_walkthrough() -> Vec<(f32, f32, bool)> {
    use leopard_quant::bitserial::BitSerialPlan;
    let q = [9i32, -5, 7, -2];
    // K values in eighths: +1, -7, -4, +2.
    let k_codes = [1i32, -7, -4, 2];
    let plan = BitSerialPlan::new(3, 1);
    let k = BitSerialVector::new(&k_codes, plan);
    let threshold = 5.0f32;
    let mut rows = Vec::new();
    // Cycle 1 of the paper: only the sign bits have been seen, so the partial
    // sum is zero and the margin covers every remaining magnitude bit.
    let init_margin = k.margin(&q, 0) as f32 / 8.0;
    rows.push((0.0, init_margin, init_margin < threshold));
    for cycle in 1..=plan.total_cycles() {
        let p = k.partial_dot(&q, cycle) as f32 / 8.0;
        let m = k.margin(&q, cycle) as f32 / 8.0;
        rows.push((p, m, p + m < threshold));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_quant::fixed::QuantParams;
    use leopard_tensor::rng;
    use proptest::prelude::*;

    fn make_dpu(config: TileConfig) -> QkDpu {
        QkDpu::new(config)
    }

    fn random_codes(n: usize, seed: u64, max: i32) -> Vec<i32> {
        use rand::Rng;
        let mut r = rng::seeded(seed);
        (0..n).map(|_| r.gen_range(-max..=max)).collect()
    }

    #[test]
    fn exactness_invariant_no_false_pruning() {
        // Core correctness claim of the paper: early termination never prunes
        // a score that would have survived.
        let dpu = make_dpu(TileConfig::ae_leopard());
        let plan = TileConfig::ae_leopard().bit_serial_plan();
        for seed in 0..50u64 {
            let q = random_codes(64, seed, 2047);
            let k_codes = random_codes(64, seed + 1000, 2047);
            let k = BitSerialVector::new(&k_codes, plan);
            let exact = k.full_dot(&q);
            let threshold = exact - 1; // the true score is above the threshold
            let outcome = dpu.compute(&q, &k, threshold);
            assert!(
                !outcome.pruned,
                "seed {seed}: pruned a surviving score (exact {exact}, th {threshold})"
            );
            assert_eq!(outcome.partial_sum, exact);
        }
    }

    #[test]
    fn clearly_below_threshold_scores_terminate_early() {
        let dpu = make_dpu(TileConfig::ae_leopard());
        let plan = TileConfig::ae_leopard().bit_serial_plan();
        // Q and K anti-correlated: dot product strongly negative.
        let q: Vec<i32> = (0..64)
            .map(|i| if i % 2 == 0 { 1500 } else { -1500 })
            .collect();
        let k_codes: Vec<i32> = (0..64)
            .map(|i| if i % 2 == 0 { -1200 } else { 1200 })
            .collect();
        let k = BitSerialVector::new(&k_codes, plan);
        let outcome = dpu.compute(&q, &k, 0);
        assert!(outcome.pruned);
        assert!(outcome.terminated_early);
        assert!(outcome.cycles < TileConfig::ae_leopard().full_dot_cycles());
        assert!(outcome.bits_processed < 11);
    }

    #[test]
    fn unpruned_scores_use_all_cycles_and_match_exact_dot() {
        let dpu = make_dpu(TileConfig::ae_leopard());
        let plan = TileConfig::ae_leopard().bit_serial_plan();
        let q = random_codes(64, 7, 2047);
        let k_codes = random_codes(64, 8, 2047);
        let k = BitSerialVector::new(&k_codes, plan);
        let outcome = dpu.compute(&q, &k, i64::MIN / 4);
        assert!(!outcome.pruned);
        assert!(!outcome.terminated_early);
        assert_eq!(outcome.cycles, 6);
        assert_eq!(outcome.partial_sum, k.full_dot(&q));
    }

    #[test]
    fn baseline_mode_is_single_cycle_and_never_prunes() {
        let dpu = make_dpu(TileConfig::baseline());
        let plan = TileConfig::baseline().bit_serial_plan();
        let q = random_codes(64, 9, 2047);
        let k_codes = random_codes(64, 10, 2047);
        let k = BitSerialVector::new(&k_codes, plan);
        let outcome = dpu.compute(&q, &k, i64::MAX / 4);
        assert_eq!(outcome.cycles, 1);
        assert!(!outcome.pruned, "baseline has no pruning");
        assert_eq!(outcome.partial_sum, k.full_dot(&q));
    }

    #[test]
    fn pruning_only_mode_prunes_but_never_terminates_early() {
        let dpu = make_dpu(TileConfig::pruning_only());
        let plan = TileConfig::pruning_only().bit_serial_plan();
        let q: Vec<i32> = vec![1000; 64];
        let k_codes: Vec<i32> = vec![-1000; 64];
        let k = BitSerialVector::new(&k_codes, plan);
        let outcome = dpu.compute(&q, &k, 0);
        assert!(outcome.pruned);
        assert!(!outcome.terminated_early);
        assert_eq!(outcome.cycles, TileConfig::pruning_only().full_dot_cycles());
    }

    #[test]
    fn higher_threshold_terminates_no_later() {
        let plan = TileConfig::ae_leopard().bit_serial_plan();
        let dpu = make_dpu(TileConfig::ae_leopard());
        let q = random_codes(64, 21, 2047);
        let k_codes = random_codes(64, 22, 2047);
        let k = BitSerialVector::new(&k_codes, plan);
        let low = dpu.compute(&q, &k, -100_000);
        let high = dpu.compute(&q, &k, 100_000);
        assert!(
            high.cycles <= low.cycles,
            "a stricter threshold cannot need more cycles"
        );
    }

    #[test]
    fn figure3_example_matches_papers_table() {
        let rows = figure3_walkthrough();
        assert_eq!(rows.len(), 4);
        // Cycle 1: P1 = 0, M1 = (9 + 5)(2^-1 + 2^-2 + 2^-3) = 12.25, continue.
        assert!((rows[0].0 - 0.0).abs() < 1e-6);
        assert!((rows[0].1 - 12.25).abs() < 1e-4);
        assert!(!rows[0].2, "cycle 1 must not terminate");
        // Cycle 2: P2 = -1, M2 = 5.25, P2 + M2 = 4.25 < 5 → terminate.
        let (p2, m2, stop2) = rows[1];
        assert!((p2 - (-1.0)).abs() < 1e-4, "P2 was {p2}");
        assert!((m2 - 5.25).abs() < 1e-4, "M2 was {m2}");
        assert!(stop2, "cycle 2 must terminate");
        // Cycles 3 and 4 of the paper (computed here for completeness):
        // P3 = -0.25, M3 = 1.75; P4 = 1.5, M4 = 0.
        assert!((rows[2].0 - (-0.25)).abs() < 1e-4);
        assert!((rows[2].1 - 1.75).abs() < 1e-4);
        assert!((rows[3].0 - 1.5).abs() < 1e-4);
        assert!((rows[3].1 - 0.0).abs() < 1e-6);
    }

    #[test]
    fn quantized_float_pipeline_prunes_consistently_with_float_comparison() {
        // Quantize float Q/K, pick a float threshold, and check the DPU's
        // pruning decision matches the float-domain comparison for scores
        // away from the threshold (within quantization error it may differ).
        let cfg = TileConfig::ae_leopard();
        let dpu = make_dpu(cfg);
        let plan = cfg.bit_serial_plan();
        let mut r = rng::seeded(33);
        let d = 64usize;
        let qf = rng::normal_matrix(&mut r, 32, d, 0.0, 1.0);
        let kf = rng::normal_matrix(&mut r, 32, d, 0.0, 1.0);
        let qp = QuantParams::calibrate(cfg.q_bits, &qf);
        let kp = QuantParams::calibrate(cfg.k_bits, &kf);
        let qq = qp.quantize_matrix(&qf);
        let kq = kp.quantize_matrix(&kf);
        let scale = qq.product_scale(&kq) / (d as f32).sqrt();
        let threshold_real = 0.25f32;
        let threshold_int = (threshold_real / scale).round() as i64;

        let mut checked = 0;
        for i in 0..32 {
            let kvec = BitSerialVector::new(kq.row(i), plan);
            let outcome = dpu.compute(qq.row(i), &kvec, threshold_int);
            let float_score: f32 = qf
                .row(i)
                .iter()
                .zip(kf.row(i).iter())
                .map(|(a, b)| a * b)
                .sum::<f32>()
                / (d as f32).sqrt();
            if (float_score - threshold_real).abs() > 0.05 {
                checked += 1;
                assert_eq!(
                    outcome.pruned,
                    float_score < threshold_real,
                    "row {i}: float score {float_score} vs threshold {threshold_real}"
                );
            }
        }
        assert!(checked > 20, "most rows should be away from the threshold");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_lengths_panic() {
        let dpu = make_dpu(TileConfig::ae_leopard());
        let plan = TileConfig::ae_leopard().bit_serial_plan();
        let k = BitSerialVector::new(&[1, 2, 3], plan);
        let _ = dpu.compute(&[1, 2], &k, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Property: the early-termination decision is *exact* — whenever the
        /// DPU prunes, the true dot product really is below the threshold.
        #[test]
        fn prop_pruning_is_never_wrong(
            pairs in proptest::collection::vec((-2047i32..=2047, -2047i32..=2047), 8..64),
            threshold in -200_000i64..200_000,
            serial_bits in 1u32..=4,
        ) {
            let cfg = TileConfig::ae_leopard().with_serial_bits(serial_bits);
            let dpu = QkDpu::new(cfg);
            let plan = cfg.bit_serial_plan();
            let q: Vec<i32> = pairs.iter().map(|p| p.0).collect();
            let k_codes: Vec<i32> = pairs.iter().map(|p| p.1).collect();
            let k = BitSerialVector::new(&k_codes, plan);
            let exact = k.full_dot(&q);
            let outcome = dpu.compute(&q, &k, threshold);
            if outcome.pruned {
                prop_assert!(exact < threshold, "pruned but exact {exact} >= threshold {threshold}");
            } else {
                prop_assert!(exact >= threshold);
                prop_assert_eq!(outcome.partial_sum, exact);
            }
        }

        /// Property: cycle count is within the configured bound.
        #[test]
        fn prop_cycles_bounded(
            pairs in proptest::collection::vec((-2047i32..=2047, -2047i32..=2047), 8..64),
            threshold in -200_000i64..200_000,
        ) {
            let cfg = TileConfig::ae_leopard();
            let dpu = QkDpu::new(cfg);
            let q: Vec<i32> = pairs.iter().map(|p| p.0).collect();
            let k_codes: Vec<i32> = pairs.iter().map(|p| p.1).collect();
            let k = BitSerialVector::new(&k_codes, cfg.bit_serial_plan());
            let outcome = dpu.compute(&q, &k, threshold);
            prop_assert!(outcome.cycles >= 1);
            prop_assert!(outcome.cycles <= cfg.full_dot_cycles());
        }
    }
}
