//! Baseline comparison helpers (Figures 9 and 10).
//!
//! The paper reports speedup and energy reduction of AE-/HP-LeOPArd relative
//! to an unpruned baseline with the same frequency, bit widths, and buffer
//! capacities. This module packages that comparison: run the same quantized
//! head workload through the baseline configuration and a LeOPArd
//! configuration, then report the cycle and energy ratios.

use crate::config::TileConfig;
use crate::energy::{energy_from_events, EnergyBreakdown, EnergyModel};
use crate::sim::{simulate_head, HeadSimResult, HeadWorkload};
use serde::{Deserialize, Serialize};

/// Outcome of comparing one configuration against the baseline on the same
/// workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineComparison {
    /// Name of the evaluated (non-baseline) configuration.
    pub config_name: &'static str,
    /// Cycles the baseline needed.
    pub baseline_cycles: u64,
    /// Cycles the evaluated configuration needed.
    pub config_cycles: u64,
    /// Baseline energy breakdown.
    pub baseline_energy: EnergyBreakdown,
    /// Evaluated configuration's energy breakdown.
    pub config_energy: EnergyBreakdown,
    /// Pruning rate observed under the evaluated configuration.
    pub pruning_rate: f64,
    /// Mean K magnitude bits processed per score under the evaluated
    /// configuration.
    pub mean_bits: f64,
}

impl BaselineComparison {
    /// Speedup of the evaluated configuration over the baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_cycles as f64 / self.config_cycles.max(1) as f64
    }

    /// Energy reduction factor (baseline energy / configuration energy).
    pub fn energy_reduction(&self) -> f64 {
        let config = self.config_energy.total();
        if config <= 0.0 {
            return 1.0;
        }
        self.baseline_energy.total() / config
    }
}

/// Runs `workload` through the baseline and through `config`, returning the
/// comparison. The same energy model prices both runs.
pub fn compare_to_baseline(
    workload: &HeadWorkload,
    config: &TileConfig,
    model: &EnergyModel,
) -> BaselineComparison {
    let baseline_cfg = TileConfig::baseline();
    let baseline = simulate_head(workload, &baseline_cfg);
    let evaluated = simulate_head(workload, config);
    BaselineComparison::from_results(&baseline_cfg, &baseline, config, &evaluated, model)
}

impl BaselineComparison {
    /// Builds the comparison from simulation results computed elsewhere.
    ///
    /// The parallel suite engine simulates each configuration exactly once
    /// per head and shares the results between comparisons; this constructor
    /// prices those shared results identically to [`compare_to_baseline`]
    /// (which remains the convenient single-call path).
    pub fn from_results(
        baseline_cfg: &TileConfig,
        baseline: &HeadSimResult,
        config: &TileConfig,
        evaluated: &HeadSimResult,
        model: &EnergyModel,
    ) -> Self {
        Self {
            config_name: config.name,
            baseline_cycles: baseline.total_cycles,
            config_cycles: evaluated.total_cycles,
            baseline_energy: energy_from_events(&baseline.events, baseline_cfg, model),
            config_energy: energy_from_events(&evaluated.events, config, model),
            pruning_rate: evaluated.pruning_rate(),
            mean_bits: evaluated.mean_bits_processed(),
        }
    }
}

/// Convenience wrapper returning the simulated results of the three
/// configurations Figure 11 contrasts: baseline, pruning-only, and full
/// LeOPArd (pruning + bit-serial early termination).
pub fn figure11_trio(
    workload: &HeadWorkload,
    model: &EnergyModel,
) -> (EnergyBreakdown, EnergyBreakdown, EnergyBreakdown) {
    let base_cfg = TileConfig::baseline();
    let prune_cfg = TileConfig::pruning_only();
    let full_cfg = TileConfig::ae_leopard();
    let base = energy_from_events(&simulate_head(workload, &base_cfg).events, &base_cfg, model);
    let prune = energy_from_events(
        &simulate_head(workload, &prune_cfg).events,
        &prune_cfg,
        model,
    );
    let full = energy_from_events(&simulate_head(workload, &full_cfg).events, &full_cfg, model);
    (base, prune, full)
}

/// Simulates a workload under every `N_QK` value in `sweep`, returning
/// `(n_qk, vpu_demand, vpu_utilization)` tuples — the Figure 13 series.
pub fn nqk_sweep(workload: &HeadWorkload, sweep: &[usize]) -> Vec<(usize, f64, f64)> {
    sweep
        .iter()
        .map(|&n| {
            let cfg = TileConfig::ae_leopard().with_n_qk(n);
            let result: HeadSimResult = simulate_head(workload, &cfg);
            (n, result.vpu_demand, result.vpu_utilization)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_tensor::rng;

    fn workload(threshold: f32, seed: u64) -> HeadWorkload {
        let mut r = rng::seeded(seed);
        let q = rng::normal_matrix(&mut r, 32, 64, 0.0, 1.0);
        let k = rng::normal_matrix(&mut r, 32, 64, 0.0, 1.0);
        HeadWorkload::from_float(&q, &k, threshold, 12)
    }

    #[test]
    fn leopard_beats_baseline_on_pruned_workloads() {
        let w = workload(0.4, 1);
        let model = EnergyModel::calibrated();
        let ae = compare_to_baseline(&w, &TileConfig::ae_leopard(), &model);
        assert!(ae.speedup() > 1.0, "speedup {}", ae.speedup());
        assert!(
            ae.energy_reduction() > 1.5,
            "energy {}",
            ae.energy_reduction()
        );
        assert!(ae.pruning_rate > 0.5);

        let hp = compare_to_baseline(&w, &TileConfig::hp_leopard(), &model);
        assert!(hp.speedup() >= ae.speedup());
    }

    #[test]
    fn no_pruning_threshold_keeps_speedup_near_parity() {
        // With an impossible threshold nothing is pruned; the bit-serial
        // front-end with 6 DPUs should still be roughly cycle-comparable to
        // the single full-precision DPU (6 DPUs x 6 cycles == 1 DPU x 1 cycle
        // per dot product in steady state).
        let mut w = workload(0.0, 2);
        w.threshold_int = i64::MIN / 4;
        let model = EnergyModel::calibrated();
        let ae = compare_to_baseline(&w, &TileConfig::ae_leopard(), &model);
        assert_eq!(ae.pruning_rate, 0.0);
        assert!(
            (0.7..=1.3).contains(&ae.speedup()),
            "unpruned speedup {} should be near 1.0",
            ae.speedup()
        );
    }

    #[test]
    fn from_results_matches_compare_to_baseline() {
        let w = workload(0.3, 7);
        let model = EnergyModel::calibrated();
        let cfg = TileConfig::ae_leopard();
        let direct = compare_to_baseline(&w, &cfg, &model);
        let baseline_cfg = TileConfig::baseline();
        let baseline = simulate_head(&w, &baseline_cfg);
        let evaluated = simulate_head(&w, &cfg);
        let shared =
            BaselineComparison::from_results(&baseline_cfg, &baseline, &cfg, &evaluated, &model);
        assert_eq!(direct, shared);
    }

    #[test]
    fn figure11_trio_is_monotonically_cheaper() {
        let w = workload(0.4, 3);
        let (base, prune, full) = figure11_trio(&w, &EnergyModel::calibrated());
        assert!(prune.total() < base.total());
        assert!(full.total() < prune.total());
    }

    #[test]
    fn nqk_sweep_demand_increases_with_parallelism() {
        let w = workload(0.2, 4);
        let rows = nqk_sweep(&w, &[3, 6, 12]);
        assert_eq!(rows.len(), 3);
        assert!(rows[2].1 > rows[0].1, "demand should grow with N_QK");
        for (_, _, util) in rows {
            assert!(util <= 1.0);
        }
    }
}
