//! Property tests for the fitted cost model (`leopard_accel::cost`):
//! fitting is deterministic, the calibration scale always lands in its
//! documented clamp, and tile-aware predictions are monotonically
//! non-increasing in the tile count.

use leopard_accel::config::TileConfig;
use leopard_accel::cost::{predict_request_cycles_tiled, CostModel, FitObservation};
use leopard_accel::sim::{simulate_head, HeadSimResult, HeadWorkload};
use leopard_tensor::rng;
use proptest::prelude::*;

fn presets() -> [TileConfig; 4] {
    [
        TileConfig::baseline(),
        TileConfig::ae_leopard(),
        TileConfig::hp_leopard(),
        TileConfig::pruning_only(),
    ]
}

/// A small pool of measured results to draw observations from, built once
/// per process (the properties only permute and rescale them, so sharing
/// is safe and keeps the `PROPTEST_CASES`-bumped CI job fast).
fn measured_pool() -> &'static Vec<(HeadSimResult, TileConfig, usize)> {
    static POOL: std::sync::OnceLock<Vec<(HeadSimResult, TileConfig, usize)>> =
        std::sync::OnceLock::new();
    POOL.get_or_init(|| {
        let mut pool = Vec::new();
        for (seed, s, threshold) in [(1u64, 24usize, 0.3f32), (2, 16, 0.0), (3, 32, 0.6)] {
            let mut r = rng::seeded(seed);
            let q = rng::normal_matrix(&mut r, s, 32, 0.0, 1.0);
            let k = rng::normal_matrix(&mut r, s, 32, 0.0, 1.0);
            let w = HeadWorkload::from_float(&q, &k, threshold, 12);
            let cfg = TileConfig::ae_leopard();
            pool.push((simulate_head(&w, &cfg), cfg, s));
        }
        pool
    })
}

const FAMILIES: [&str; 3] = ["MemN2N", "BERT-B", "ViT-B"];

proptest! {
    /// Fitting the same observations (any content, any assignment of
    /// results to families) twice yields identical models, and permuting
    /// the observation order never changes any family's fitted constants.
    #[test]
    fn prop_fit_is_deterministic_and_order_insensitive(
        assignment in proptest::collection::vec((0usize..3, 0usize..3), 1..8),
        rotation in 0usize..8,
    ) {
        let pool = measured_pool();
        let observations: Vec<FitObservation<'_>> = assignment
            .iter()
            .map(|&(family, result)| FitObservation {
                family: FAMILIES[family],
                result: &pool[result].0,
                config: &pool[result].1,
                seq_len: pool[result].2,
            })
            .collect();
        let fitted = CostModel::fit_from_results(observations.iter().copied());
        let again = CostModel::fit_from_results(observations.iter().copied());
        prop_assert_eq!(&fitted, &again, "same observations, same model");

        // A rotated observation order changes pooling order only, never
        // the per-family constants (pooling is content-based).
        let k = rotation % observations.len();
        let rotated: Vec<_> = observations[k..]
            .iter()
            .chain(&observations[..k])
            .copied()
            .collect();
        let refit = CostModel::fit_from_results(rotated);
        for family in FAMILIES {
            prop_assert!(
                (fitted.saving(family) - refit.saving(family)).abs() < 1e-15,
                "saving for {} moved under permutation", family
            );
            prop_assert!(
                (fitted.scale(family) - refit.scale(family)).abs() < 1e-15,
                "scale for {} moved under permutation", family
            );
        }
    }

    /// The calibration scale always lands in its documented 0.25..4 clamp,
    /// even for degenerate calibration workloads whose measured cycles are
    /// scaled far away from the analytical prediction.
    #[test]
    fn prop_calibration_scale_respects_its_clamp(
        cycle_scale in 0.0001f64..10_000.0,
        result_index in 0usize..3,
    ) {
        let pool = measured_pool();
        let (base, cfg, seq_len) = &pool[result_index];
        let distorted = HeadSimResult {
            total_cycles: ((base.total_cycles as f64 * cycle_scale) as u64).max(1),
            ..base.clone()
        };
        let model = CostModel::fit_from_results([FitObservation {
            family: "GPT-2-L",
            result: &distorted,
            config: cfg,
            seq_len: *seq_len,
        }]);
        let scale = model.scale("GPT-2-L");
        prop_assert!(
            (0.25..=4.0).contains(&scale),
            "scale {} escaped the documented clamp", scale
        );
    }

    /// Tile-aware predictions are monotonically non-increasing in the tile
    /// count, for every preset, fitted or not — and one tile reproduces
    /// the single-tile predictor exactly.
    #[test]
    fn prop_tiled_predictions_never_increase_with_tiles(
        seq_len in 1usize..300,
        heads in 1usize..16,
        pruning_rate in 0.0f64..1.0,
        preset in 0u32..4,
        fit_family in 0usize..3,
    ) {
        let pool = measured_pool();
        let fitted = CostModel::fit_from_results([FitObservation {
            family: FAMILIES[fit_family],
            result: &pool[0].0,
            config: &pool[0].1,
            seq_len: pool[0].2,
        }]);
        let config = presets()[preset as usize];
        for family in ["MemN2N", "unfitted"] {
            let mut previous = u64::MAX;
            for tiles in 1usize..=9 {
                let predicted = fitted.predict_request_cycles_tiled(
                    family, &config, seq_len, heads, pruning_rate, tiles,
                );
                prop_assert!(
                    predicted <= previous,
                    "prediction rose from {} to {} at tiles={} ({}, s={})",
                    previous, predicted, tiles, config.name, seq_len
                );
                prop_assert!(predicted >= 1);
                previous = predicted;
            }
            // One tile is exactly the single-tile predictor.
            prop_assert_eq!(
                fitted.predict_request_cycles_tiled(
                    family, &config, seq_len, heads, pruning_rate, 1
                ),
                fitted.predict_request_cycles(family, &config, seq_len, heads, pruning_rate)
            );
        }
        // The family-agnostic convenience form is monotone too.
        prop_assert!(
            predict_request_cycles_tiled(&config, seq_len, heads, pruning_rate, 8)
                <= predict_request_cycles_tiled(&config, seq_len, heads, pruning_rate, 2)
        );
    }
}

/// Deterministic Fisher–Yates driven by a splitmix-style LCG, so shuffle
/// invariance is testable from one proptest-supplied seed.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

/// A shared pool of distinct small head workloads for the placement
/// properties (built once; the properties only subset and permute it).
fn head_pool() -> &'static Vec<leopard_accel::sim::HeadWorkload> {
    static POOL: std::sync::OnceLock<Vec<leopard_accel::sim::HeadWorkload>> =
        std::sync::OnceLock::new();
    POOL.get_or_init(|| {
        (0..8usize)
            .map(|h| {
                let s = 6 + h * 5; // ragged lengths: 6, 11, ..., 41
                let mut r = rng::seeded(0xBEEF + h as u64);
                let q = rng::normal_matrix(&mut r, s, 16, 0.0, 1.0);
                let k = rng::normal_matrix(&mut r, s, 16, 0.0, 1.0);
                leopard_accel::sim::HeadWorkload::from_float(&q, &k, 0.25, 12)
            })
            .collect()
    })
}

/// A synthetic per-shard cost: quadratic work split across tiles plus a
/// per-shard overhead. Any positive predictor exercises the plan-level
/// guarantees; the overhead keeps over-splitting from being free.
fn synthetic_predict(overhead: u64) -> impl Fn(usize, usize) -> u64 {
    move |seq_len, split| {
        let work = (seq_len * seq_len * 24) as u64;
        work.div_ceil(split as u64) + overhead
    }
}

proptest! {
    /// `plan_layer` is deterministic, and greedy LPT never *predicts* a
    /// longer makespan than round-robin on any instance — the portfolio
    /// fallback makes this a construction guarantee, not a heuristic.
    #[test]
    fn prop_lpt_never_predicts_worse_than_round_robin(
        lens in proptest::collection::vec(1usize..300, 1..17),
        tiles in 1usize..=8,
        overhead in 0u64..5_000,
    ) {
        use leopard_accel::schedule::{plan_layer, Placement, PlannedHead};
        let heads: Vec<PlannedHead> = lens
            .iter()
            .enumerate()
            .map(|(h, &s)| PlannedHead { seq_len: s, tie_break: h as u64 })
            .collect();
        let predict = synthetic_predict(overhead);
        let lpt = plan_layer(&heads, tiles, Placement::Lpt, &predict);
        let rr = plan_layer(&heads, tiles, Placement::RoundRobin, &predict);
        prop_assert!(
            lpt.predicted_makespan_cycles() <= rr.predicted_makespan_cycles(),
            "LPT predicted {} > RR predicted {} (lens={:?}, tiles={})",
            lpt.predicted_makespan_cycles(), rr.predicted_makespan_cycles(), lens, tiles
        );
        // Determinism: planning the same instance twice is bit-identical.
        for placement in Placement::ALL {
            let once = plan_layer(&heads, tiles, placement, &predict);
            let again = plan_layer(&heads, tiles, placement, &predict);
            prop_assert_eq!(once, again);
        }
    }

    /// `schedule_layer` placement is invariant to head enumeration order:
    /// shuffling the input heads permutes per-head results but leaves the
    /// per-tile busy vector, makespan, energy, and pruning rate
    /// bit-identical (the plan sorts heads into a canonical content order
    /// before placing anything).
    #[test]
    fn prop_schedule_layer_is_invariant_to_head_enumeration_order(
        count in 2usize..=8,
        shuffle_seed in 0u64..1_000_000_000,
        placement_index in 0usize..3,
        tiles in 1usize..=8,
    ) {
        use leopard_accel::schedule::{schedule_layer, Placement};
        use leopard_accel::energy::EnergyModel;
        let placement = Placement::ALL[placement_index];
        let pool = head_pool();
        let heads: Vec<_> = pool[..count].to_vec();
        let order = permutation(count, shuffle_seed);
        let shuffled: Vec<_> = order.iter().map(|&i| heads[i].clone()).collect();

        let mut config = TileConfig::ae_leopard();
        config.tiles = tiles;
        let model = EnergyModel::calibrated();
        let base = schedule_layer(&heads, &config, &model, placement);
        let perm = schedule_layer(&shuffled, &config, &model, placement);

        // The executed layout is identical tile for tile...
        prop_assert_eq!(&base.tile_cycles, &perm.tile_cycles);
        prop_assert_eq!(base.makespan_cycles, perm.makespan_cycles);
        prop_assert_eq!(
            base.predicted_makespan_cycles,
            perm.predicted_makespan_cycles
        );
        // ...aggregates are bit-identical (canonical fold order)...
        prop_assert_eq!(base.energy.total().to_bits(), perm.energy.total().to_bits());
        prop_assert_eq!(base.pruning_rate.to_bits(), perm.pruning_rate.to_bits());
        // ...and per-head results follow the heads, wherever they moved.
        for (position, &source) in order.iter().enumerate() {
            prop_assert_eq!(&perm.heads[position].merged, &base.heads[source].merged);
            prop_assert_eq!(perm.splits[position], base.splits[source]);
        }
    }
}
