//! Layer-conformance spine: differential tests pinning layer-scheduled
//! execution to the per-head merged baseline, for **every** placement
//! policy, tile count, and head mix.
//!
//! The contract under test (see `leopard_accel::schedule`):
//!
//! * **Bit-identity** — `schedule_layer(heads, cfg, model, policy)`
//!   reassembles every head through `merge_head_shards`, so
//!   `schedule.heads[h].merged` equals single-tile execution of head `h`
//!   exactly (every field), for any policy × tiles 1..=8 × heads 1..=16 ×
//!   random sequence lengths — including degenerate single-head layers and
//!   over-tiled layers (more tiles than heads).
//! * **Policy independence** — energy and pruning fold in a canonical
//!   content order shared by every policy, so they are *bit*-identical
//!   across placements. Only the makespan (and the per-tile busy vector
//!   and shard layout behind it) may differ between policies.
//! * **Accounting** — per-tile busy cycles conserve shard cycles exactly:
//!   the tile vector sums to the sum of every head's shard cycles, and
//!   the makespan is its maximum.
//!
//! The property tests use `ProptestConfig::default()`, so CI's
//! `PROPTEST_CASES`-bumped job widens their coverage without code changes.

use leopard_accel::config::TileConfig;
use leopard_accel::energy::{EnergyBreakdown, EnergyModel};
use leopard_accel::schedule::{schedule_layer, LayerSchedule, Placement};
use leopard_accel::sim::{simulate_head, HeadWorkload};
use proptest::prelude::*;

/// Builds one head's workload from raw 12-bit code pairs (one `(q, k)`
/// element pair per row position, replicated across a small head
/// dimension), the same construction the tile-conformance spine uses.
fn workload_from_pairs(pairs: &[(i32, i32)], threshold: i64, head_dim: usize) -> HeadWorkload {
    let q_codes: Vec<Vec<i32>> = pairs
        .iter()
        .map(|&(q, _)| {
            (0..head_dim)
                .map(|c| q.wrapping_add(c as i32 * 7) % 2047)
                .collect()
        })
        .collect();
    let k_codes: Vec<Vec<i32>> = pairs
        .iter()
        .map(|&(_, k)| {
            (0..head_dim)
                .map(|c| k.wrapping_sub(c as i32 * 5) % 2047)
                .collect()
        })
        .collect();
    HeadWorkload::from_codes(q_codes, k_codes, threshold, head_dim, 12)
}

/// Ragged layer: one workload per head, each with its own sequence length,
/// derived from a cheap deterministic generator so proptest shrinking
/// stays meaningful on the `(lens, seed)` inputs.
fn layer_from_lens(lens: &[usize], threshold: i64, seed: i32) -> Vec<HeadWorkload> {
    lens.iter()
        .enumerate()
        .map(|(h, &s)| {
            let pairs: Vec<(i32, i32)> = (0..s)
                .map(|row| {
                    let x = seed
                        .wrapping_mul(31)
                        .wrapping_add(h as i32 * 131)
                        .wrapping_add(row as i32 * 17);
                    ((x * 7) % 2046, (x * 13 + 5) % 2046)
                })
                .collect();
            workload_from_pairs(&pairs, threshold, 8)
        })
        .collect()
}

/// The exact bit pattern of an energy breakdown — policy independence is a
/// *bit*-identity claim, so comparisons go through `to_bits`, not an
/// epsilon.
fn energy_bits(e: &EnergyBreakdown) -> [u64; 5] {
    [
        e.qk_compute.to_bits(),
        e.key_memory.to_bits(),
        e.softmax.to_bits(),
        e.v_compute.to_bits(),
        e.value_memory.to_bits(),
    ]
}

/// Asserts the whole conformance contract for one layer at one tile count,
/// returning the per-policy schedules for cross-policy checks.
fn check_layer(workloads: &[HeadWorkload], tiles: usize) -> Vec<LayerSchedule> {
    let model = EnergyModel::calibrated();
    let mut config = TileConfig::ae_leopard();
    config.tiles = tiles;

    let schedules: Vec<LayerSchedule> = Placement::ALL
        .iter()
        .map(|&placement| schedule_layer(workloads, &config, &model, placement))
        .collect();

    for (schedule, &placement) in schedules.iter().zip(Placement::ALL.iter()) {
        assert_eq!(schedule.placement, placement);
        assert_eq!(schedule.tiles, tiles);
        assert_eq!(schedule.tile_cycles.len(), tiles);
        assert_eq!(schedule.splits.len(), workloads.len());
        assert_eq!(schedule.heads.len(), workloads.len());

        let mut shard_sum = 0u64;
        for (h, workload) in workloads.iter().enumerate() {
            // Bit-identity: the reassembled head equals single-tile
            // execution of the same head, field for field.
            let baseline = simulate_head(workload, &config);
            assert_eq!(
                schedule.heads[h].merged,
                baseline,
                "{} tiles={tiles} head={h} merged result diverged from baseline",
                placement.label()
            );
            // Splits are bounded by the tile count and never zero.
            let split = schedule.splits[h];
            assert!(
                (1..=tiles).contains(&split),
                "{} tiles={tiles} head={h} split={split} out of range",
                placement.label()
            );
            assert_eq!(schedule.heads[h].tile_cycles.len(), split);
            shard_sum += schedule.heads[h].tile_cycles.iter().sum::<u64>();
        }

        // Accounting: shard cycles are conserved onto tiles, and the
        // makespan is the busiest tile.
        assert_eq!(
            schedule.tile_cycles.iter().sum::<u64>(),
            shard_sum,
            "{} tiles={tiles} lost or invented shard cycles",
            placement.label()
        );
        assert_eq!(
            schedule.makespan_cycles,
            schedule.tile_cycles.iter().copied().max().unwrap_or(0),
            "{} tiles={tiles} makespan is not the busiest tile",
            placement.label()
        );
    }

    // Cross-policy: merged results, energy, and pruning are bit-identical;
    // only the makespan side may move. LPT never *predicts* worse than
    // round-robin (the portfolio guarantee).
    let lpt = &schedules[Placement::Lpt.index()];
    let rr = &schedules[Placement::RoundRobin.index()];
    assert!(
        lpt.predicted_makespan_cycles <= rr.predicted_makespan_cycles,
        "LPT predicted {} > RR predicted {} at tiles={tiles}",
        lpt.predicted_makespan_cycles,
        rr.predicted_makespan_cycles
    );
    for other in &schedules[1..] {
        for h in 0..workloads.len() {
            assert_eq!(
                lpt.heads[h].merged,
                other.heads[h].merged,
                "policy {} changed head {h}'s merged accounting",
                other.placement.label()
            );
        }
        assert_eq!(
            energy_bits(&lpt.energy),
            energy_bits(&other.energy),
            "policy {} moved the layer energy",
            other.placement.label()
        );
        assert_eq!(
            lpt.pruning_rate.to_bits(),
            other.pruning_rate.to_bits(),
            "policy {} moved the layer pruning rate",
            other.placement.label()
        );
    }
    schedules
}

proptest! {
    /// The headline differential property: any policy × tiles 1..=8 ×
    /// heads 1..=16 × random per-head sequence lengths. Covers degenerate
    /// single-head and over-tiled layers whenever the generators produce
    /// `lens.len() < tiles`.
    #[test]
    fn prop_layer_schedule_is_bit_identical_to_per_head_baseline(
        lens in proptest::collection::vec(1usize..24, 1..17),
        threshold in -200_000i64..200_000,
        seed in -1_000_000i32..1_000_000,
        tiles in 1usize..=8,
    ) {
        let workloads = layer_from_lens(&lens, threshold, seed);
        check_layer(&workloads, tiles);
    }

    /// Degenerate layers stressed on their own so shrinking cannot walk
    /// away from them: a single head under every tile count (over-tiling
    /// a lone head), where static cannot split but lpt/rr shard across
    /// every tile.
    #[test]
    fn prop_single_head_layer_conforms_at_every_tile_count(
        len in 1usize..40,
        threshold in -200_000i64..200_000,
        seed in -1_000_000i32..1_000_000,
    ) {
        let workloads = layer_from_lens(&[len], threshold, seed);
        for tiles in 1..=8 {
            let schedules = check_layer(&workloads, tiles);
            let lpt = &schedules[Placement::Lpt.index()];
            let stat = &schedules[Placement::Static.index()];
            // Static keeps the lone head whole on one tile; the growing
            // policies split it across every tile.
            prop_assert_eq!(stat.splits[0], 1);
            prop_assert_eq!(lpt.splits[0], tiles);
            // So static's makespan is the full single-tile total.
            prop_assert_eq!(stat.makespan_cycles, stat.heads[0].merged.total_cycles);
            prop_assert!(lpt.makespan_cycles <= stat.makespan_cycles);
        }
    }
}

/// The explicit degenerate matrix the issue pins down, outside proptest so
/// it always runs exactly: over-tiled layers (2 heads × 8 tiles), a wide
/// layer (16 heads × 3 tiles), and a single head on 1..=8 tiles, with
/// ragged sequence lengths no tile count divides.
#[test]
fn degenerate_layer_matrix_conforms() {
    let wide: Vec<usize> = (0..16).map(|h| 5 + (h * 7) % 23).collect();
    for (lens, tiles) in [
        (vec![17], 1),
        (vec![17], 8),
        (vec![19, 7], 8),
        (vec![23, 23], 8),
        (wide.clone(), 3),
        (wide, 8),
    ] {
        let workloads = layer_from_lens(&lens, 40_000, 0x5EED);
        check_layer(&workloads, tiles);
    }
}

/// A heterogeneous fixed-seed layer where greedy LPT beats round-robin on
/// *measured* makespan, not just predicted: ragged head lengths make the
/// round-robin cursor stack long shards onto the same tile.
#[test]
fn lpt_beats_round_robin_makespan_on_a_ragged_layer() {
    let lens = [37, 31, 29, 23, 19, 17, 13, 11, 7, 5, 3, 2];
    let workloads = layer_from_lens(&lens, 40_000, 0xACE5);
    let model = EnergyModel::calibrated();
    let mut config = TileConfig::ae_leopard();
    config.tiles = 4;
    let lpt = schedule_layer(&workloads, &config, &model, Placement::Lpt);
    let rr = schedule_layer(&workloads, &config, &model, Placement::RoundRobin);
    assert!(
        lpt.makespan_cycles < rr.makespan_cycles,
        "LPT {} should beat RR {} on this ragged layer",
        lpt.makespan_cycles,
        rr.makespan_cycles
    );
    // And the balance metric agrees with the ordering.
    assert!(lpt.balance() > rr.balance());
}
