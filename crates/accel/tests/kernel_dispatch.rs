//! Dispatch-layer spine: differential tests pinning the runtime-dispatched
//! kernel-v2 paths to each other and to the retained oracles.
//!
//! The contract under test (see `leopard_accel::kernel_v2`):
//!
//! * **Path identity** — forcing [`KernelPath::Portable`] (the scalar-word
//!   fallback) produces a `HeadSimResult` byte-identical to the requested
//!   [`KernelPath::Wide`] path on the same inputs, for every preset and
//!   every `bits_per_cycle` granularity 1..=4. On machines without the
//!   wide feature set the wide request resolves to portable, so the
//!   property degenerates to reflexivity rather than failing.
//! * **Oracle identity** — both paths equal the retained v1 per-pair
//!   kernel (`simulate_head_pairwise`) and the scalar per-element DPU
//!   reference (`simulate_head_reference`) exactly: cycles, stalls,
//!   utilization, histograms, events.
//! * **Tail-word hygiene** — sequence lengths straddling the 64-column
//!   word boundary (`s = 23`, `63`, `64`, `65`) are pinned explicitly so
//!   garbage bits beyond the tail mask can never leak into an alive-lane
//!   popcount.
//!
//! The property tests use `ProptestConfig::default()`, so CI's
//! `PROPTEST_CASES`-bumped differential job widens their coverage without
//! code changes.

use leopard_accel::config::TileConfig;
use leopard_accel::kernel_v2::KernelPath;
use leopard_accel::sim::{
    simulate_head_pairwise, simulate_head_reference, simulate_head_with_path, HeadWorkload,
};
use proptest::prelude::*;

/// The four studied tile configurations, in `SimUnitKind` order.
fn presets() -> [TileConfig; 4] {
    [
        TileConfig::baseline(),
        TileConfig::ae_leopard(),
        TileConfig::hp_leopard(),
        TileConfig::pruning_only(),
    ]
}

/// Builds a deterministic workload of `s` K-columns × `d` dimensions from
/// a seed, covering the full signed 12-bit code range including zeros.
fn workload(s: usize, d: usize, threshold: i64, seed: i32) -> HeadWorkload {
    let code = |r: usize, c: usize, salt: i32| -> i32 {
        (r as i32 * 131 + c as i32 * 37 + salt)
            .wrapping_mul(2_654_435_761u32 as i32)
            .wrapping_add(seed)
            % 2047
    };
    let q_codes: Vec<Vec<i32>> = (0..s)
        .map(|r| (0..d).map(|c| code(r, c, 17)).collect())
        .collect();
    let k_codes: Vec<Vec<i32>> = (0..s)
        .map(|r| (0..d).map(|c| code(r, c, 29)).collect())
        .collect();
    HeadWorkload::from_codes(q_codes, k_codes, threshold, d, 12)
}

/// Asserts the full dispatch contract on one workload/config pair: wide,
/// portable, the retained per-pair kernel, and the scalar reference all
/// produce byte-identical `HeadSimResult`s.
fn assert_paths_agree(w: &HeadWorkload, config: &TileConfig) {
    let reference = simulate_head_reference(w, config);
    let wide = simulate_head_with_path(w, config, KernelPath::Wide);
    let portable = simulate_head_with_path(w, config, KernelPath::Portable);
    let pairwise = simulate_head_pairwise(w, config);
    assert_eq!(wide, portable, "wide and portable paths diverged");
    assert_eq!(
        portable, reference,
        "portable path diverged from DPU reference"
    );
    assert_eq!(
        pairwise, reference,
        "v1 per-pair kernel diverged from DPU reference"
    );
}

#[test]
fn boundary_column_counts_agree_across_paths() {
    // s=23 and s=65 are the issue-pinned tail-word boundaries: a single
    // partial word, and one full word plus a one-bit tail. 63/64 round
    // out the straddle. Every preset runs at every length.
    for s in [23, 63, 64, 65] {
        let w = workload(s, 33, 40_000, s as i32);
        for config in presets() {
            assert_paths_agree(&w, &config);
        }
    }
}

#[test]
fn granularity_sweep_agrees_across_paths() {
    // bits_per_cycle 1..=4 over a mid-threshold workload: every reveal
    // granularity must schedule identical outcomes on both paths.
    let w = workload(50, 16, 30_000, 7);
    for bits in 1..=4 {
        let config = TileConfig::ae_leopard().with_serial_bits(bits);
        assert_paths_agree(&w, &config);
    }
}

proptest! {
    /// The headline dispatch property: for arbitrary workloads, thresholds,
    /// and reveal granularities, the forced-portable fallback is
    /// byte-identical to the wide path — and both match the retained v1
    /// kernel and the scalar DPU reference.
    #[test]
    fn prop_portable_and_wide_paths_are_byte_identical(
        s in 1usize..70,
        d in 1usize..20,
        threshold in -200_000i64..200_000,
        bits in 1u32..=4,
        seed in 0i32..1000,
    ) {
        let w = workload(s, d, threshold, seed);
        for preset in presets() {
            assert_paths_agree(&w, &preset.with_serial_bits(bits));
        }
    }
}
