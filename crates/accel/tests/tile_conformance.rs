//! Tile-conformance spine: differential tests pinning the tile-partitioned
//! execution path to the single-tile reference simulator.
//!
//! The contract under test (see `leopard_accel::schedule`):
//!
//! * **Bit-identity** — `simulate_head_tiled(w, cfg, tiles).merged` equals
//!   `simulate_head_reference(w, cfg)` exactly (every field: cycles,
//!   stalls, utilization, histograms, events) for *any* tile count,
//!   including tile counts that do not divide the sequence length and tile
//!   counts exceeding it.
//! * **Merge semantics** — per-tile cycles merge as `max` (the makespan),
//!   counters and histograms as sums; empty shards are identities.
//!
//! The property tests use `ProptestConfig::default()`, so CI's
//! `PROPTEST_CASES`-bumped job widens their coverage without code changes.

use leopard_accel::config::TileConfig;
use leopard_accel::schedule::{merge_head_shards, simulate_head_tiled, TilePartition};
use leopard_accel::sim::{
    simulate_head, simulate_head_reference, simulate_head_shard, simulate_head_shard_reference,
    HeadWorkload,
};
use proptest::prelude::*;

/// The four studied tile configurations, in `SimUnitKind` order.
fn presets() -> [TileConfig; 4] {
    [
        TileConfig::baseline(),
        TileConfig::ae_leopard(),
        TileConfig::hp_leopard(),
        TileConfig::pruning_only(),
    ]
}

/// Builds a workload from raw 12-bit code pairs (one `(q, k)` element pair
/// per row position, replicated across a small head dimension so every
/// sequence length exercises row partitioning).
fn workload_from_pairs(pairs: &[(i32, i32)], threshold: i64, head_dim: usize) -> HeadWorkload {
    let q_codes: Vec<Vec<i32>> = pairs
        .iter()
        .map(|&(q, _)| {
            (0..head_dim)
                .map(|c| q.wrapping_add(c as i32 * 7) % 2047)
                .collect()
        })
        .collect();
    let k_codes: Vec<Vec<i32>> = pairs
        .iter()
        .map(|&(_, k)| {
            (0..head_dim)
                .map(|c| k.wrapping_sub(c as i32 * 5) % 2047)
                .collect()
        })
        .collect();
    HeadWorkload::from_codes(q_codes, k_codes, threshold, head_dim, 12)
}

proptest! {
    /// The headline differential property: tile-partitioned execution is
    /// bit-identical to the single-tile reference for every preset, every
    /// bit-serial granularity 1..=4, and tile counts 1..=8 — including
    /// sequence lengths not divisible by the tile count.
    #[test]
    fn prop_tiled_simulation_is_bit_identical_to_reference(
        pairs in proptest::collection::vec((-2046i32..=2046, -2046i32..=2046), 1..40),
        threshold in -200_000i64..200_000,
        bits_per_cycle in 1u32..=4,
        preset in 0u32..4,
        tiles in 1usize..=8,
    ) {
        let workload = workload_from_pairs(&pairs, threshold, 8);
        let base = presets()[preset as usize];
        for config in [base, base.with_serial_bits(bits_per_cycle)] {
            let reference = simulate_head_reference(&workload, &config);
            let tiled = simulate_head_tiled(&workload, &config, tiles);
            prop_assert_eq!(
                &tiled.merged, &reference,
                "tiles={} diverged on {} (s={})", tiles, config.name, pairs.len()
            );
            // The kernel whole-head path agrees as well (kernel contract).
            prop_assert_eq!(&simulate_head(&workload, &config), &reference);
            // Makespan semantics: the max over per-tile cycles, never more
            // than the single-tile total.
            let max_tile = tiled.tile_cycles.iter().copied().max().unwrap_or(0).max(1);
            prop_assert_eq!(tiled.makespan_cycles(), max_tile);
            prop_assert!(tiled.makespan_cycles() <= reference.total_cycles);
        }
    }

    /// Shard-granular differential property: the kernel shard path equals
    /// the reference shard path on arbitrary sub-ranges, so the engine's
    /// shard jobs are interchangeable between inner loops.
    #[test]
    fn prop_kernel_shards_equal_reference_shards(
        pairs in proptest::collection::vec((-2046i32..=2046, -2046i32..=2046), 2..32),
        threshold in -100_000i64..100_000,
        preset in 0u32..4,
        cut in 0u64..=1_000,
    ) {
        let workload = workload_from_pairs(&pairs, threshold, 6);
        let s = workload.seq_len();
        let split = (cut as usize * s) / 1_001; // any boundary in 0..s
        let config = presets()[preset as usize];
        for rows in [0..split, split..s, 0..s] {
            prop_assert_eq!(
                simulate_head_shard(&workload, &config, rows.clone()),
                simulate_head_shard_reference(&workload, &config, rows)
            );
        }
    }
}

/// The explicit matrix the issue pins down: all 4 presets × tiles ∈
/// {1, 2, 3, 4, 8} × bits_per_cycle 1..=4, on a sequence length (23) that
/// none of the non-trivial tile counts divide.
#[test]
fn preset_by_tiles_by_granularity_matrix_is_bit_identical() {
    let mut r = leopard_tensor::rng::seeded(0x711E5);
    let q = leopard_tensor::rng::normal_matrix(&mut r, 23, 64, 0.0, 1.0);
    let k = leopard_tensor::rng::normal_matrix(&mut r, 23, 64, 0.0, 1.0);
    let workload = HeadWorkload::from_float(&q, &k, 0.25, 12);
    for base in presets() {
        for bits_per_cycle in 1..=4u32 {
            let config = base.with_serial_bits(bits_per_cycle);
            let reference = simulate_head_reference(&workload, &config);
            for tiles in [1usize, 2, 3, 4, 8] {
                assert_eq!(
                    simulate_head_tiled(&workload, &config, tiles).merged,
                    reference,
                    "{} / B={bits_per_cycle} / tiles={tiles}",
                    config.name
                );
            }
        }
    }
}

/// Merge-semantics unit matrix: cycles = max over tiles, counters = sum.
#[test]
fn merge_matrix_max_cycles_and_summed_counters() {
    let mut r = leopard_tensor::rng::seeded(0x711E6);
    let q = leopard_tensor::rng::normal_matrix(&mut r, 21, 32, 0.0, 1.0);
    let k = leopard_tensor::rng::normal_matrix(&mut r, 21, 32, 0.0, 1.0);
    let workload = HeadWorkload::from_float(&q, &k, 0.2, 12);
    let config = TileConfig::ae_leopard();
    for tiles in [1usize, 2, 3, 4, 8] {
        let partition = TilePartition::new(workload.seq_len(), tiles);
        let shards: Vec<_> = partition
            .ranges()
            .into_iter()
            .map(|rows| simulate_head_shard(&workload, &config, rows))
            .collect();
        let tiled = merge_head_shards(tiles, &shards);

        // cycles = max over the per-tile standalone cycles.
        assert_eq!(
            tiled.makespan_cycles(),
            shards
                .iter()
                .map(|s| s.standalone_cycles())
                .max()
                .unwrap()
                .max(1)
        );
        // counters = sum over tiles.
        assert_eq!(
            tiled.merged.pruned_scores,
            shards.iter().map(|s| s.pruned_scores).sum::<u64>()
        );
        assert_eq!(
            tiled.merged.surviving_scores,
            shards.iter().map(|s| s.surviving_scores).sum::<u64>()
        );
        assert_eq!(
            tiled.merged.events.qk_dpu_cycles,
            shards.iter().map(|s| s.events.qk_dpu_cycles).sum::<u64>()
        );
        assert_eq!(
            tiled.merged.events.softmax_ops,
            shards.iter().map(|s| s.events.softmax_ops).sum::<u64>()
        );
        for bit in 0..tiled.merged.bits_histogram.len() {
            assert_eq!(
                tiled.merged.bits_histogram[bit],
                shards.iter().map(|s| s.bits_histogram[bit]).sum::<u64>()
            );
        }
        // Busy totals are sums too (they are per-row quantities).
        assert_eq!(
            tiled.merged.frontend_busy_cycles,
            shards.iter().map(|s| s.frontend_busy_cycles).sum::<u64>()
        );
        assert_eq!(
            tiled.merged.backend_busy_cycles,
            shards.iter().map(|s| s.backend_busy_cycles).sum::<u64>()
        );
    }
}

/// Empty-shard edge: more tiles than rows leaves trailing tiles empty with
/// zero cycles, and the merge is still bit-identical to the reference.
#[test]
fn merge_matrix_empty_shard_edge() {
    let mut r = leopard_tensor::rng::seeded(0x711E7);
    let q = leopard_tensor::rng::normal_matrix(&mut r, 3, 16, 0.0, 1.0);
    let k = leopard_tensor::rng::normal_matrix(&mut r, 3, 16, 0.0, 1.0);
    let workload = HeadWorkload::from_float(&q, &k, 0.1, 12);
    let config = TileConfig::ae_leopard();
    let tiled = simulate_head_tiled(&workload, &config, 8);
    assert_eq!(tiled.tiles, 8);
    assert_eq!(tiled.tile_cycles.len(), 8);
    assert_eq!(
        tiled.tile_cycles.iter().filter(|&&c| c == 0).count(),
        5,
        "five of eight tiles have no rows"
    );
    assert_eq!(tiled.merged, simulate_head_reference(&workload, &config));
    assert!(tiled.balance() < 0.5, "over-tiling must read as imbalance");
}
