//! Offline stand-in for the `serde` crate.
//!
//! The workspace is built in environments without crates.io access, and the
//! codebase only uses serde's *derive* surface (`#[derive(Serialize,
//! Deserialize)]` as forward-looking annotations — nothing actually
//! serializes through serde yet; structured output is hand-rendered by
//! `leopard-runtime::report`). This crate provides just enough for those
//! derives to compile: two marker traits and no-op derive macros of the same
//! names. Swapping in the real serde later is a one-line change in each
//! `Cargo.toml`.

#![warn(rust_2018_idioms)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. The no-op derive does not
/// generate an implementation; nothing in the workspace bounds on it.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
