//! No-op `Serialize` / `Deserialize` derive macros for the offline serde
//! stand-in. Expanding to an empty token stream keeps every
//! `#[derive(Serialize, Deserialize)]` in the workspace compiling without
//! pulling in syn/quote (unavailable offline).

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
