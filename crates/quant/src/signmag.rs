//! Sign-magnitude representation of quantized values.
//!
//! The margin calculation of the early-termination mechanism (Section 3.2 and
//! Figure 5b of the paper) operates on signs and magnitudes: products of
//! operands with concordant signs can only *raise* the final dot product, so
//! the conservative margin sums the magnitudes of the Q elements whose sign
//! agrees with the corresponding K element's sign. Representing K in
//! sign-magnitude form also makes the MSB-first bit-serial decomposition
//! straightforward, because the magnitude bits can be streamed independently
//! of the sign.

use serde::{Deserialize, Serialize};

/// A signed integer split into an explicit sign and magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignMagnitude {
    /// `true` when the value is negative. Zero is represented as positive.
    pub negative: bool,
    /// Absolute value.
    pub magnitude: u32,
}

impl SignMagnitude {
    /// Splits a two's-complement integer into sign and magnitude.
    pub fn from_code(code: i32) -> Self {
        Self {
            negative: code < 0,
            magnitude: code.unsigned_abs(),
        }
    }

    /// Reassembles the signed integer.
    pub fn to_code(self) -> i32 {
        if self.negative {
            -(self.magnitude as i32)
        } else {
            self.magnitude as i32
        }
    }

    /// Sign as `+1` / `-1` (zero counts as positive, matching the hardware's
    /// XOR-based concordance test, where a zero operand contributes nothing
    /// to the product anyway).
    pub fn sign(self) -> i32 {
        if self.negative {
            -1
        } else {
            1
        }
    }

    /// Whether the product of two values is non-negative (signs agree).
    /// This is the XOR test of Figure 5(b).
    pub fn concordant(self, other: SignMagnitude) -> bool {
        self.negative == other.negative
    }
}

impl From<i32> for SignMagnitude {
    fn from(code: i32) -> Self {
        Self::from_code(code)
    }
}

/// Splits a slice of codes into sign-magnitude form.
pub fn split_slice(codes: &[i32]) -> Vec<SignMagnitude> {
    codes.iter().map(|&c| SignMagnitude::from_code(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn split_and_reassemble() {
        for &code in &[0i32, 1, -1, 127, -128, 2047, -2047] {
            let sm = SignMagnitude::from_code(code);
            assert_eq!(sm.to_code(), code);
        }
    }

    #[test]
    fn zero_is_positive() {
        let sm = SignMagnitude::from_code(0);
        assert!(!sm.negative);
        assert_eq!(sm.sign(), 1);
        assert_eq!(sm.magnitude, 0);
    }

    #[test]
    fn concordance_matches_product_sign() {
        let cases = [(3, 5), (-3, -5), (3, -5), (-3, 5), (0, -7)];
        for (a, b) in cases {
            let sa = SignMagnitude::from_code(a);
            let sb = SignMagnitude::from_code(b);
            let product_nonnegative = (a as i64 * b as i64) >= 0;
            if a != 0 && b != 0 {
                assert_eq!(sa.concordant(sb), product_nonnegative, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn split_slice_preserves_order() {
        let sms = split_slice(&[1, -2, 3]);
        assert_eq!(sms.len(), 3);
        assert_eq!(sms[1].to_code(), -2);
    }

    proptest! {
        #[test]
        fn prop_round_trip(code in -100_000i32..100_000) {
            prop_assert_eq!(SignMagnitude::from_code(code).to_code(), code);
        }

        #[test]
        fn prop_concordant_iff_same_sign(a in -1000i32..1000, b in -1000i32..1000) {
            prop_assume!(a != 0 && b != 0);
            let concordant = SignMagnitude::from_code(a).concordant(SignMagnitude::from_code(b));
            prop_assert_eq!(concordant, (a > 0) == (b > 0));
        }
    }
}
