//! Symmetric fixed-point quantization.
//!
//! Post-training quantization in the paper uses 12 bits for the Q/K operands
//! of the front-end and 16 bits for the back-end (`·V`) operands. The scheme
//! here is plain symmetric linear quantization: a real value `x` maps to
//! `round(x / scale)` clamped into the signed `n`-bit range. Scores produced
//! by a quantized dot product live in the *product* domain (`scale_q *
//! scale_k`), and the learned threshold must be mapped into that same domain
//! before the accelerator can compare against partial sums — helpers for both
//! directions are provided.

use leopard_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Parameters of a symmetric linear quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Total bit width including the sign bit.
    pub bits: u32,
    /// Real value represented by one integer step.
    pub scale: f32,
}

impl QuantParams {
    /// Creates quantization parameters for a given bit width such that
    /// `max_abs` maps to the largest representable magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=31` or `max_abs` is not positive and
    /// finite.
    pub fn from_max_abs(bits: u32, max_abs: f32) -> Self {
        assert!((2..=31).contains(&bits), "bits must be in 2..=31");
        assert!(
            max_abs.is_finite() && max_abs > 0.0,
            "max_abs must be positive and finite"
        );
        let max_code = ((1i64 << (bits - 1)) - 1) as f32;
        Self {
            bits,
            scale: max_abs / max_code,
        }
    }

    /// Creates quantization parameters calibrated to the maximum absolute
    /// value of `m` (falling back to 1.0 for an all-zero matrix).
    pub fn calibrate(bits: u32, m: &Matrix) -> Self {
        let max_abs = m.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
        Self::from_max_abs(bits, if max_abs > 0.0 { max_abs } else { 1.0 })
    }

    /// Largest representable positive code (`2^(bits-1) - 1`).
    pub fn max_code(&self) -> i32 {
        ((1i64 << (self.bits - 1)) - 1) as i32
    }

    /// Quantizes a single value (round-to-nearest, clamped).
    pub fn quantize(&self, x: f32) -> i32 {
        let code = (x / self.scale).round();
        code.clamp(-(self.max_code() as f32), self.max_code() as f32) as i32
    }

    /// Dequantizes a single code.
    pub fn dequantize(&self, code: i32) -> f32 {
        code as f32 * self.scale
    }

    /// Quantizes a whole matrix.
    pub fn quantize_matrix(&self, m: &Matrix) -> QuantizedMatrix {
        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            codes: m.iter().map(|&v| self.quantize(v)).collect(),
            params: *self,
        }
    }

    /// Worst-case absolute quantization error (half a step).
    pub fn max_error(&self) -> f32 {
        self.scale * 0.5
    }
}

/// A quantized matrix: integer codes plus the quantizer that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    codes: Vec<i32>,
    params: QuantParams,
}

impl QuantizedMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantizer parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// The integer code at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn code(&self, r: usize, c: usize) -> i32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.codes[r * self.cols + c]
    }

    /// Row `r` as a slice of codes.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[i32] {
        assert!(r < self.rows, "row out of bounds");
        &self.codes[r * self.cols..(r + 1) * self.cols]
    }

    /// Reconstructs the real-valued matrix.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.codes
                .iter()
                .map(|&c| self.params.dequantize(c))
                .collect(),
        )
        // lint:allow(panic-in-library, reason = "rows x cols matches the code vector length this struct was built with")
        .expect("shape consistent by construction")
    }

    /// Integer dot product between row `r` of `self` and row `other_row` of
    /// `other` (both interpreted as vectors of codes). The result lives in
    /// the product domain `self.scale * other.scale`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or an index is out of range.
    pub fn dot_rows(&self, r: usize, other: &QuantizedMatrix, other_row: usize) -> i64 {
        assert_eq!(self.cols, other.cols, "dot product length mismatch");
        self.row(r)
            .iter()
            .zip(other.row(other_row).iter())
            .map(|(&a, &b)| a as i64 * b as i64)
            .sum()
    }

    /// Scale of the product domain when multiplying codes from `self` with
    /// codes from `other` (e.g. a `Q·Kᵀ` score).
    pub fn product_scale(&self, other: &QuantizedMatrix) -> f32 {
        self.params.scale * other.params.scale
    }
}

/// Maps a real-valued score-domain threshold (e.g. a learned `Th`, already
/// including the `1/sqrt(d)` scaling) into the integer product domain of a
/// quantized `Q·Kᵀ`, so the accelerator can compare partial sums against it.
///
/// `score_scale` is [`QuantizedMatrix::product_scale`] of the Q and K
/// matrices; `sqrt_d_scaling` is the `1/sqrt(d)` factor applied to real
/// scores but *not* to the integer dot product.
pub fn threshold_to_product_domain(threshold: f32, score_scale: f32, sqrt_d_scaling: f32) -> f32 {
    // real_score = integer_dot * score_scale * sqrt_d_scaling, so the integer
    // comparison point is threshold / (score_scale * sqrt_d_scaling).
    threshold / (score_scale * sqrt_d_scaling)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_tensor::rng;
    use proptest::prelude::*;

    #[test]
    fn round_trip_error_is_bounded() {
        let params = QuantParams::from_max_abs(12, 2.0);
        for &x in &[0.0f32, 0.5, -1.7, 1.999, -2.0] {
            let err = (params.dequantize(params.quantize(x)) - x).abs();
            assert!(
                err <= params.max_error() + 1e-6,
                "error {err} too large for {x}"
            );
        }
    }

    #[test]
    fn clamping_at_extremes() {
        let params = QuantParams::from_max_abs(8, 1.0);
        assert_eq!(params.quantize(10.0), params.max_code());
        assert_eq!(params.quantize(-10.0), -params.max_code());
        assert_eq!(params.max_code(), 127);
    }

    #[test]
    fn calibrate_uses_max_abs() {
        let m = Matrix::from_rows(&[vec![0.1, -3.0, 2.0]]);
        let params = QuantParams::calibrate(12, &m);
        assert_eq!(params.quantize(-3.0), -params.max_code());
        let zero = QuantParams::calibrate(12, &Matrix::zeros(2, 2));
        assert!(zero.scale > 0.0);
    }

    #[test]
    fn quantized_matrix_access_and_dequantize() {
        let m = Matrix::from_rows(&[vec![0.5, -0.25], vec![1.0, 0.0]]);
        let params = QuantParams::from_max_abs(12, 1.0);
        let q = params.quantize_matrix(&m);
        assert_eq!(q.rows(), 2);
        assert_eq!(q.cols(), 2);
        assert_eq!(q.code(1, 0), params.max_code());
        assert!(q.dequantize().approx_eq(&m, params.max_error() + 1e-6));
    }

    #[test]
    fn integer_dot_product_matches_float_within_quantization_error() {
        let mut r = rng::seeded(3);
        let a = rng::normal_matrix(&mut r, 4, 64, 0.0, 1.0);
        let b = rng::normal_matrix(&mut r, 4, 64, 0.0, 1.0);
        let pa = QuantParams::calibrate(12, &a);
        let pb = QuantParams::calibrate(12, &b);
        let qa = pa.quantize_matrix(&a);
        let qb = pb.quantize_matrix(&b);
        for i in 0..4 {
            let float_dot: f32 = a.row(i).iter().zip(b.row(i)).map(|(x, y)| x * y).sum();
            let int_dot = qa.dot_rows(i, &qb, i);
            let reconstructed = int_dot as f32 * qa.product_scale(&qb);
            assert!(
                (float_dot - reconstructed).abs() < 0.05 * float_dot.abs().max(1.0),
                "row {i}: {float_dot} vs {reconstructed}"
            );
        }
    }

    #[test]
    fn threshold_domain_mapping_is_consistent() {
        let score_scale = 0.001f32;
        let sqrt_d = 1.0 / 8.0; // d = 64
        let th_real = 0.4f32;
        let th_int = threshold_to_product_domain(th_real, score_scale, sqrt_d);
        // An integer dot product exactly at th_int reproduces th_real.
        let real = th_int * score_scale * sqrt_d;
        assert!((real - th_real).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=31")]
    fn silly_bit_width_panics() {
        let _ = QuantParams::from_max_abs(1, 1.0);
    }

    proptest! {
        #[test]
        fn prop_quantize_dequantize_error_bounded(x in -10.0f32..10.0) {
            let params = QuantParams::from_max_abs(12, 10.0);
            let err = (params.dequantize(params.quantize(x)) - x).abs();
            prop_assert!(err <= params.max_error() + 1e-5);
        }

        #[test]
        fn prop_quantize_is_monotonic(a in -5.0f32..5.0, b in -5.0f32..5.0) {
            let params = QuantParams::from_max_abs(12, 5.0);
            if a <= b {
                prop_assert!(params.quantize(a) <= params.quantize(b));
            } else {
                prop_assert!(params.quantize(a) >= params.quantize(b));
            }
        }

        #[test]
        fn prop_codes_stay_in_range(x in -100.0f32..100.0, bits in 4u32..16) {
            let params = QuantParams::from_max_abs(bits, 1.5);
            let code = params.quantize(x);
            prop_assert!(code.abs() <= params.max_code());
        }
    }
}
