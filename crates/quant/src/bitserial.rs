//! MSB-first bit-serial decomposition of key vectors.
//!
//! The LeOPArd front-end streams K magnitudes `B` bits per cycle, most
//! significant bits first, while Q stays at full precision. After a group of
//! bits has been processed, the partial dot product only accounts for the bits
//! seen so far; the *maximum* value the remaining (unseen) bits could add to a
//! single element's magnitude is `2^(remaining_bits) - 1`. That quantity feeds
//! the conservative margin: elements whose Q and K signs agree could still
//! raise the dot product by at most `|q| * (2^remaining - 1)`.

use crate::signmag::SignMagnitude;
use serde::{Deserialize, Serialize};

/// Static description of a bit-serial schedule: how many magnitude bits a key
/// element has and how many are consumed per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSerialPlan {
    /// Total number of magnitude bits (excluding the sign bit).
    pub magnitude_bits: u32,
    /// Bits consumed per cycle (`B`; the paper settles on 2).
    pub bits_per_cycle: u32,
}

impl BitSerialPlan {
    /// Creates a plan.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_cycle` is zero or exceeds `magnitude_bits`, or if
    /// `magnitude_bits` exceeds 31.
    pub fn new(magnitude_bits: u32, bits_per_cycle: u32) -> Self {
        assert!(
            magnitude_bits > 0 && magnitude_bits <= 31,
            "magnitude bits in 1..=31"
        );
        assert!(
            bits_per_cycle > 0 && bits_per_cycle <= magnitude_bits,
            "bits per cycle must be in 1..=magnitude_bits"
        );
        Self {
            magnitude_bits,
            bits_per_cycle,
        }
    }

    /// The plan the paper's configuration uses for K: 12-bit operands → 11
    /// magnitude bits, processed 2 bits per cycle.
    pub fn paper_default() -> Self {
        Self::new(11, 2)
    }

    /// Number of cycles needed to stream every magnitude bit.
    pub fn total_cycles(&self) -> u32 {
        self.magnitude_bits.div_ceil(self.bits_per_cycle)
    }

    /// Number of magnitude bits already consumed after `cycles` cycles.
    pub fn bits_after(&self, cycles: u32) -> u32 {
        (cycles * self.bits_per_cycle).min(self.magnitude_bits)
    }

    /// Number of magnitude bits still unseen after `cycles` cycles.
    pub fn remaining_bits(&self, cycles: u32) -> u32 {
        self.magnitude_bits - self.bits_after(cycles)
    }

    /// Maximum value the unseen bits of a single element can still add to its
    /// magnitude after `cycles` cycles: `2^remaining - 1`.
    pub fn max_remaining_magnitude(&self, cycles: u32) -> u32 {
        let remaining = self.remaining_bits(cycles);
        if remaining == 0 {
            0
        } else {
            (1u32 << remaining) - 1
        }
    }
}

/// A key vector decomposed for bit-serial processing: per-element signs plus
/// magnitudes that can be replayed a few MSBs at a time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSerialVector {
    plan: BitSerialPlan,
    elements: Vec<SignMagnitude>,
}

impl BitSerialVector {
    /// Decomposes a slice of quantized codes.
    ///
    /// # Panics
    ///
    /// Panics if any magnitude does not fit in the plan's magnitude bits.
    pub fn new(codes: &[i32], plan: BitSerialPlan) -> Self {
        let max_mag = if plan.magnitude_bits >= 31 {
            u32::MAX
        } else {
            (1u32 << plan.magnitude_bits) - 1
        };
        let elements = codes
            .iter()
            .map(|&c| {
                let sm = SignMagnitude::from_code(c);
                assert!(
                    sm.magnitude <= max_mag,
                    "magnitude {} does not fit in {} bits",
                    sm.magnitude,
                    plan.magnitude_bits
                );
                sm
            })
            .collect();
        Self { plan, elements }
    }

    /// The schedule this vector was decomposed with.
    pub fn plan(&self) -> BitSerialPlan {
        self.plan
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Sign/magnitude of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn element(&self, i: usize) -> SignMagnitude {
        self.elements[i]
    }

    /// The portion of element `i`'s magnitude visible after `cycles` cycles:
    /// its top `bits_after(cycles)` bits, shifted back into place (the low
    /// unseen bits read as zero).
    pub fn partial_magnitude(&self, i: usize, cycles: u32) -> u32 {
        let seen = self.plan.bits_after(cycles);
        if seen == 0 {
            return 0;
        }
        let unseen = self.plan.magnitude_bits - seen;
        (self.elements[i].magnitude >> unseen) << unseen
    }

    /// The signed partial value of element `i` after `cycles` cycles.
    pub fn partial_code(&self, i: usize, cycles: u32) -> i64 {
        let mag = self.partial_magnitude(i, cycles) as i64;
        if self.elements[i].negative {
            -mag
        } else {
            mag
        }
    }

    /// The magnitude bits of element `i` newly revealed by cycle `cycle`
    /// (1-indexed), i.e. the difference between the partial magnitudes after
    /// `cycle` and `cycle - 1` cycles.
    pub fn revealed_magnitude(&self, i: usize, cycle: u32) -> u32 {
        assert!(cycle >= 1, "cycles are 1-indexed");
        self.partial_magnitude(i, cycle) - self.partial_magnitude(i, cycle - 1)
    }

    /// Exact partial dot product with a full-precision Q vector after
    /// `cycles` cycles of K bits have been processed.
    ///
    /// # Panics
    ///
    /// Panics if `q_codes.len()` differs from the vector length.
    pub fn partial_dot(&self, q_codes: &[i32], cycles: u32) -> i64 {
        assert_eq!(q_codes.len(), self.len(), "dimension mismatch");
        q_codes
            .iter()
            .enumerate()
            .map(|(i, &q)| q as i64 * self.partial_code(i, cycles))
            .sum()
    }

    /// The full-precision dot product (all bits processed).
    pub fn full_dot(&self, q_codes: &[i32]) -> i64 {
        self.partial_dot(q_codes, self.plan.total_cycles())
    }

    /// Conservative margin after `cycles` cycles for a given Q vector: the
    /// maximum amount the dot product could still increase, i.e. the sum over
    /// *concordant-sign* pairs of `|q| * max_remaining_magnitude`. Discordant
    /// pairs are ignored because they can only lower the result (Figure 3).
    ///
    /// # Panics
    ///
    /// Panics if `q_codes.len()` differs from the vector length.
    pub fn margin(&self, q_codes: &[i32], cycles: u32) -> i64 {
        assert_eq!(q_codes.len(), self.len(), "dimension mismatch");
        let per_element = self.plan.max_remaining_magnitude(cycles) as i64;
        if per_element == 0 {
            return 0;
        }
        q_codes
            .iter()
            .enumerate()
            .filter(|(i, &q)| {
                let k = self.elements[*i];
                q != 0 && k.magnitude != 0 && (q < 0) == k.negative
            })
            .map(|(_, &q)| (q.unsigned_abs() as i64) * per_element)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plan_cycle_arithmetic() {
        let plan = BitSerialPlan::new(11, 2);
        assert_eq!(plan.total_cycles(), 6);
        assert_eq!(plan.bits_after(0), 0);
        assert_eq!(plan.bits_after(1), 2);
        assert_eq!(plan.bits_after(6), 11);
        assert_eq!(plan.remaining_bits(5), 1);
        assert_eq!(plan.max_remaining_magnitude(0), (1 << 11) - 1);
        assert_eq!(plan.max_remaining_magnitude(6), 0);
        assert_eq!(BitSerialPlan::paper_default(), plan);
    }

    #[test]
    #[should_panic(expected = "bits per cycle")]
    fn invalid_plan_panics() {
        let _ = BitSerialPlan::new(4, 0);
    }

    #[test]
    fn partial_magnitude_reveals_msbs_first() {
        let plan = BitSerialPlan::new(8, 2);
        // magnitude 0b1011_0110 = 182
        let v = BitSerialVector::new(&[182], plan);
        assert_eq!(v.partial_magnitude(0, 0), 0);
        assert_eq!(v.partial_magnitude(0, 1), 0b1000_0000);
        assert_eq!(v.partial_magnitude(0, 2), 0b1011_0000);
        assert_eq!(v.partial_magnitude(0, 3), 0b1011_0100);
        assert_eq!(v.partial_magnitude(0, 4), 182);
        assert_eq!(v.revealed_magnitude(0, 2), 0b0011_0000);
    }

    #[test]
    fn partial_dot_converges_to_exact_dot() {
        let plan = BitSerialPlan::new(11, 2);
        let k_codes = vec![1000, -731, 512, -3];
        let q_codes = vec![9, -5, 7, -2];
        let v = BitSerialVector::new(&k_codes, plan);
        let exact: i64 = k_codes
            .iter()
            .zip(q_codes.iter())
            .map(|(&k, &q)| k as i64 * q as i64)
            .sum();
        assert_eq!(v.full_dot(&q_codes), exact);
        // Monotone refinement: each cycle adds information.
        let mut prev_err = i64::MAX;
        for cyc in 0..=plan.total_cycles() {
            let err = (v.partial_dot(&q_codes, cyc) - exact).abs();
            assert!(err <= prev_err.max(0) || cyc == 0, "error should not grow");
            prev_err = err;
        }
    }

    #[test]
    fn margin_is_conservative_upper_bound() {
        // The defining invariant: partial + margin >= final, at every cycle.
        let plan = BitSerialPlan::new(11, 2);
        let k_codes = vec![901, -2047, 13, 768, -55, 0, 1200, -640];
        let q_codes = vec![-2047, 1024, 555, -77, 2000, 1, -900, 333];
        let v = BitSerialVector::new(&k_codes, plan);
        let exact = v.full_dot(&q_codes);
        for cyc in 0..=plan.total_cycles() {
            let bound = v.partial_dot(&q_codes, cyc) + v.margin(&q_codes, cyc);
            assert!(
                bound >= exact,
                "cycle {cyc}: bound {bound} below exact {exact}"
            );
        }
        // And at the last cycle the bound is tight.
        assert_eq!(
            v.partial_dot(&q_codes, plan.total_cycles()) + v.margin(&q_codes, plan.total_cycles()),
            exact
        );
    }

    #[test]
    fn margin_shrinks_as_bits_are_processed() {
        let plan = BitSerialPlan::new(11, 1);
        let k_codes = vec![1024, -1024, 512, 256];
        let q_codes = vec![100, 100, -100, 50];
        let v = BitSerialVector::new(&k_codes, plan);
        let mut prev = i64::MAX;
        for cyc in 0..=plan.total_cycles() {
            let m = v.margin(&q_codes, cyc);
            assert!(m <= prev, "margin must be non-increasing");
            prev = m;
        }
        assert_eq!(prev, 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_magnitude_panics() {
        let plan = BitSerialPlan::new(4, 2);
        let _ = BitSerialVector::new(&[100], plan);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The conservative-margin invariant on random vectors: the partial
        /// sum plus margin never under-estimates the final dot product, for
        /// every bit-serial granularity the design space explores.
        #[test]
        fn prop_margin_never_underestimates(
            pairs in proptest::collection::vec((-2047i32..=2047, -2047i32..=2047), 1..32),
            bits_per_cycle in 1u32..=4,
        ) {
            let k: Vec<i32> = pairs.iter().map(|p| p.0).collect();
            let q: Vec<i32> = pairs.iter().map(|p| p.1).collect();
            let plan = BitSerialPlan::new(11, bits_per_cycle);
            let v = BitSerialVector::new(&k, plan);
            let exact = v.full_dot(&q);
            for cyc in 0..=plan.total_cycles() {
                prop_assert!(v.partial_dot(&q, cyc) + v.margin(&q, cyc) >= exact);
            }
        }

        /// Partial dot products always converge exactly.
        #[test]
        fn prop_full_dot_is_exact(
            pairs in proptest::collection::vec((-2047i32..=2047, -2047i32..=2047), 1..64),
        ) {
            let k: Vec<i32> = pairs.iter().map(|p| p.0).collect();
            let q: Vec<i32> = pairs.iter().map(|p| p.1).collect();
            let plan = BitSerialPlan::paper_default();
            let v = BitSerialVector::new(&k, plan);
            let exact: i64 = k.iter().zip(q.iter()).map(|(&a, &b)| a as i64 * b as i64).sum();
            prop_assert_eq!(v.full_dot(&q), exact);
        }
    }
}
