//! Fixed-point quantization and bit-serial decomposition for LeOPArd.
//!
//! The paper's accelerator works on quantized operands: 12-bit Q and K for the
//! `Q·Kᵀ` front-end and 16-bit values for the `·V` back-end (Section 5.1),
//! with K processed *bit-serially*, 2 bits per cycle from MSB to LSB
//! (Section 4.2). Three modules provide that machinery:
//!
//! * [`fixed`] — symmetric linear quantization of `f32` matrices into `n`-bit
//!   signed integers plus the scale needed to map scores (and the learned
//!   thresholds) into the quantized domain.
//! * [`signmag`] — sign-magnitude views of quantized values; the hardware
//!   computes margins from signs and magnitudes, not two's complement.
//! * [`bitserial`] — decomposition of K magnitudes into MSB-first bit planes
//!   of configurable width `B` (the paper uses `B = 2`), together with the
//!   "maximum possible remaining contribution" helper the conservative margin
//!   calculation relies on.
//! * [`planes`] — the same decomposition packed as per-magnitude-bit
//!   bitmasks (`u64` words) plus sign and nonzero masks, the layout the
//!   incremental QK kernel in `leopard-accel` consumes.
//!
//! # Example
//!
//! ```
//! use leopard_quant::fixed::QuantParams;
//!
//! let params = QuantParams::from_max_abs(12, 1.0);
//! let q = params.quantize(0.5);
//! assert!((params.dequantize(q) - 0.5).abs() < 1e-3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitserial;
pub mod fixed;
pub mod planes;
pub mod signmag;

pub use bitserial::{BitSerialPlan, BitSerialVector};
pub use fixed::{QuantParams, QuantizedMatrix};
pub use planes::{KPlanes, KPlanesSoa};
pub use signmag::SignMagnitude;
