//! Packed bit-plane decomposition of key vectors.
//!
//! [`BitSerialVector`] stores one sign/magnitude pair per element and
//! re-derives everything a bit-serial cycle needs — partial sums, margins —
//! by walking all `d` elements again on every call. That is faithful to the
//! hardware but wasteful in software: the simulator's inner loop calls it
//! `s × s × cycles` times per head.
//!
//! [`KPlanes`] is the same information laid out for incremental arithmetic:
//! one `d`-wide bitmask per magnitude bit (plane `b` has bit `i` set when
//! element `i`'s magnitude has bit `b` set), plus a sign mask and a
//! nonzero-magnitude mask. Two identities make the per-cycle work collapse:
//!
//! * the partial-sum **delta** of cycle `c` is exactly the contribution of
//!   the newly revealed planes, `Σ_{b ∈ revealed(c)} 2^b · S_b` with
//!   `S_b = Σ_{i ∈ plane_b} sign_i(K) · q_i`, so the partial sum never has
//!   to be recomputed from scratch; and
//! * the conservative margin factors as
//!   `max_remaining_magnitude(c) × Σ_{concordant} |q_i|`, where the
//!   concordant-pair sum is a property of the (Q row, K column) pair alone —
//!   computable **once** in O(d) instead of once per cycle.
//!
//! The masks are `u64` words, so sign concordance and plane membership
//! become word-wide boolean algebra. `leopard-accel`'s row-batched kernel
//! builds on this layout; the helpers here are the (slow, obviously correct)
//! reference semantics the property tests pin against [`BitSerialVector`].

use crate::bitserial::BitSerialVector;
use crate::signmag::SignMagnitude;
use serde::{Deserialize, Serialize};

/// A key vector decomposed into per-magnitude-bit bitmasks ("planes"), a
/// sign mask, and a nonzero-magnitude mask. See the module docs for why this
/// layout makes bit-serial simulation incremental.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KPlanes {
    magnitude_bits: u32,
    len: usize,
    words: usize,
    /// Flattened planes: plane `b` occupies `[b * words, (b + 1) * words)`.
    planes: Vec<u64>,
    /// Bit `i` set when element `i` is negative.
    sign_mask: Vec<u64>,
    /// Bit `i` set when element `i`'s magnitude is nonzero.
    nonzero_mask: Vec<u64>,
}

impl KPlanes {
    /// Decomposes a slice of quantized codes into bit planes.
    ///
    /// # Panics
    ///
    /// Panics if `magnitude_bits` is not in `1..=31` or any magnitude does
    /// not fit in `magnitude_bits` bits (the same contract as
    /// [`BitSerialVector::new`]).
    pub fn new(codes: &[i32], magnitude_bits: u32) -> Self {
        assert!(
            (1..=31).contains(&magnitude_bits),
            "magnitude bits in 1..=31"
        );
        let max_mag = (1u32 << magnitude_bits) - 1;
        let len = codes.len();
        let words = len.div_ceil(64).max(1);
        let mut planes = vec![0u64; magnitude_bits as usize * words];
        let mut sign_mask = vec![0u64; words];
        let mut nonzero_mask = vec![0u64; words];
        for (i, &code) in codes.iter().enumerate() {
            let sm = SignMagnitude::from_code(code);
            assert!(
                sm.magnitude <= max_mag,
                "magnitude {} does not fit in {} bits",
                sm.magnitude,
                magnitude_bits
            );
            let (w, bit) = (i / 64, 1u64 << (i % 64));
            if sm.negative {
                sign_mask[w] |= bit;
            }
            if sm.magnitude != 0 {
                nonzero_mask[w] |= bit;
            }
            for b in 0..magnitude_bits {
                if sm.magnitude & (1 << b) != 0 {
                    planes[b as usize * words + w] |= bit;
                }
            }
        }
        Self {
            magnitude_bits,
            len,
            words,
            planes,
            sign_mask,
            nonzero_mask,
        }
    }

    /// Decomposes an already bit-serial vector (same elements, same
    /// magnitude width).
    pub fn from_vector(v: &BitSerialVector) -> Self {
        let codes: Vec<i32> = (0..v.len()).map(|i| v.element(i).to_code()).collect();
        Self::new(&codes, v.plan().magnitude_bits)
    }

    /// Number of magnitude bits (planes).
    pub fn magnitude_bits(&self) -> u32 {
        self.magnitude_bits
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of `u64` words per mask (`ceil(len / 64)`, at least 1).
    pub fn words(&self) -> usize {
        self.words
    }

    /// The bitmask of plane `b` (weight `2^b`).
    ///
    /// # Panics
    ///
    /// Panics if `b >= magnitude_bits`.
    pub fn plane(&self, b: u32) -> &[u64] {
        assert!(b < self.magnitude_bits, "plane index out of range");
        let w = self.words;
        &self.planes[b as usize * w..(b as usize + 1) * w]
    }

    /// The sign mask (bit `i` set when element `i` is negative).
    pub fn sign_mask(&self) -> &[u64] {
        &self.sign_mask
    }

    /// The nonzero-magnitude mask.
    pub fn nonzero_mask(&self) -> &[u64] {
        &self.nonzero_mask
    }

    /// Reference semantics of one plane's signed Q sum:
    /// `S_b = Σ_{i ∈ plane_b} sign_i(K) · q_i`.
    ///
    /// # Panics
    ///
    /// Panics if `q_codes.len()` differs from the vector length.
    pub fn signed_plane_sum(&self, b: u32, q_codes: &[i32]) -> i64 {
        assert_eq!(q_codes.len(), self.len, "dimension mismatch");
        let mut sum = 0i64;
        for (w, (&p, &s)) in self.plane(b).iter().zip(self.sign_mask.iter()).enumerate() {
            let mut pos = p & !s;
            while pos != 0 {
                let i = w * 64 + pos.trailing_zeros() as usize;
                sum += q_codes[i] as i64;
                pos &= pos - 1;
            }
            let mut neg = p & s;
            while neg != 0 {
                let i = w * 64 + neg.trailing_zeros() as usize;
                sum -= q_codes[i] as i64;
                neg &= neg - 1;
            }
        }
        sum
    }

    /// The partial dot product once the top `seen_bits` magnitude bits have
    /// been revealed (MSB first): `Σ_{b ≥ magnitude_bits - seen} 2^b · S_b`.
    /// With `seen_bits = magnitude_bits` this is the exact dot product.
    ///
    /// # Panics
    ///
    /// Panics if `seen_bits > magnitude_bits` or the lengths mismatch.
    pub fn partial_dot_seen(&self, q_codes: &[i32], seen_bits: u32) -> i64 {
        assert!(seen_bits <= self.magnitude_bits, "seen bits out of range");
        (self.magnitude_bits - seen_bits..self.magnitude_bits)
            .map(|b| self.signed_plane_sum(b, q_codes) << b)
            .sum()
    }

    /// The exact dot product with a full-precision Q vector.
    pub fn full_dot(&self, q_codes: &[i32]) -> i64 {
        self.partial_dot_seen(q_codes, self.magnitude_bits)
    }

    /// The concordant-pair |Q| sum: `Σ |q_i|` over pairs where `q_i != 0`,
    /// the K magnitude is nonzero, and the signs agree. The conservative
    /// margin after `c` cycles is exactly
    /// `max_remaining_magnitude(c) × concordant_abs_sum` — one multiply per
    /// cycle instead of an O(d) rescan.
    ///
    /// # Panics
    ///
    /// Panics if `q_codes.len()` differs from the vector length.
    pub fn concordant_abs_sum(&self, q_codes: &[i32]) -> i64 {
        assert_eq!(q_codes.len(), self.len, "dimension mismatch");
        let mut sum = 0i64;
        for w in 0..self.words {
            let base = w * 64;
            let limit = (self.len - base).min(64);
            let mut q_pos = 0u64;
            let mut q_neg = 0u64;
            for (j, &q) in q_codes[base..base + limit].iter().enumerate() {
                if q > 0 {
                    q_pos |= 1 << j;
                } else if q < 0 {
                    q_neg |= 1 << j;
                }
            }
            let mut concordant =
                ((self.sign_mask[w] & q_neg) | (!self.sign_mask[w] & q_pos)) & self.nonzero_mask[w];
            while concordant != 0 {
                let i = base + concordant.trailing_zeros() as usize;
                sum += q_codes[i].unsigned_abs() as i64;
                concordant &= concordant - 1;
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitserial::BitSerialPlan;
    use proptest::prelude::*;

    #[test]
    fn planes_mirror_magnitude_bits() {
        // magnitude 0b101 = 5, negative; magnitude 0b011 = 3, positive; zero.
        let p = KPlanes::new(&[-5, 3, 0], 3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.words(), 1);
        assert_eq!(p.plane(0)[0], 0b011); // bit 0 set in |−5| and |3|
        assert_eq!(p.plane(1)[0], 0b010); // bit 1 set in |3|
        assert_eq!(p.plane(2)[0], 0b001); // bit 2 set in |−5|
        assert_eq!(p.sign_mask()[0], 0b001);
        assert_eq!(p.nonzero_mask()[0], 0b011);
    }

    #[test]
    fn full_dot_matches_direct_product() {
        let k = [1000i32, -731, 512, -3, 0, 2047];
        let q = [9i32, -5, 7, -2, 1234, -1];
        let p = KPlanes::new(&k, 11);
        let exact: i64 = k
            .iter()
            .zip(q.iter())
            .map(|(&a, &b)| a as i64 * b as i64)
            .sum();
        assert_eq!(p.full_dot(&q), exact);
    }

    #[test]
    fn concordant_sum_matches_margin_filter() {
        let k = [901i32, -2047, 13, 768, -55, 0, 1200, -640];
        let q = [-2047i32, 1024, 555, -77, 2000, 1, -900, 333];
        let p = KPlanes::new(&k, 11);
        let plan = BitSerialPlan::new(11, 2);
        let v = BitSerialVector::new(&k, plan);
        for cyc in 0..=plan.total_cycles() {
            let mrm = plan.max_remaining_magnitude(cyc) as i64;
            assert_eq!(mrm * p.concordant_abs_sum(&q), v.margin(&q, cyc));
        }
    }

    #[test]
    fn multi_word_vectors_cross_the_u64_boundary() {
        let k: Vec<i32> = (0..100).map(|i| (i * 37 % 4093) - 2046).collect();
        let q: Vec<i32> = (0..100).map(|i| (i * 53 % 4093) - 2046).collect();
        let p = KPlanes::new(&k, 11);
        assert_eq!(p.words(), 2);
        let plan = BitSerialPlan::new(11, 2);
        let v = BitSerialVector::new(&k, plan);
        assert_eq!(p.full_dot(&q), v.full_dot(&q));
        for cyc in 0..=plan.total_cycles() {
            assert_eq!(
                p.partial_dot_seen(&q, plan.bits_after(cyc)),
                v.partial_dot(&q, cyc)
            );
        }
    }

    #[test]
    fn from_vector_round_trips() {
        let k = [44i32, -7, 0, 2047, -2047];
        let plan = BitSerialPlan::new(11, 2);
        let v = BitSerialVector::new(&k, plan);
        assert_eq!(KPlanes::from_vector(&v), KPlanes::new(&k, 11));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_magnitude_panics() {
        let _ = KPlanes::new(&[100], 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The bit-plane decomposition replays *exactly* the partial sums of
        /// the element-wise bit-serial reference, at every cycle, for every
        /// granularity the design space explores. This is the identity the
        /// incremental kernel's deltas rest on.
        #[test]
        fn prop_partial_sums_match_bitserial_reference(
            pairs in proptest::collection::vec((-2047i32..=2047, -2047i32..=2047), 1..80),
            bits_per_cycle in 1u32..=4,
        ) {
            let k: Vec<i32> = pairs.iter().map(|p| p.0).collect();
            let q: Vec<i32> = pairs.iter().map(|p| p.1).collect();
            let plan = BitSerialPlan::new(11, bits_per_cycle);
            let v = BitSerialVector::new(&k, plan);
            let p = KPlanes::new(&k, 11);
            for cyc in 0..=plan.total_cycles() {
                prop_assert_eq!(
                    p.partial_dot_seen(&q, plan.bits_after(cyc)),
                    v.partial_dot(&q, cyc)
                );
            }
        }

        /// The factored margin — one concordant |Q| sum times the per-cycle
        /// remaining-magnitude cap — equals the reference margin exactly.
        #[test]
        fn prop_factored_margin_matches_bitserial_reference(
            pairs in proptest::collection::vec((-2047i32..=2047, -2047i32..=2047), 1..80),
            bits_per_cycle in 1u32..=4,
        ) {
            let k: Vec<i32> = pairs.iter().map(|p| p.0).collect();
            let q: Vec<i32> = pairs.iter().map(|p| p.1).collect();
            let plan = BitSerialPlan::new(11, bits_per_cycle);
            let v = BitSerialVector::new(&k, plan);
            let p = KPlanes::new(&k, 11);
            let concordant = p.concordant_abs_sum(&q);
            for cyc in 0..=plan.total_cycles() {
                let mrm = plan.max_remaining_magnitude(cyc) as i64;
                prop_assert_eq!(mrm * concordant, v.margin(&q, cyc));
            }
        }
    }
}
