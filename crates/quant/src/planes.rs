//! Packed bit-plane decomposition of key vectors.
//!
//! [`BitSerialVector`] stores one sign/magnitude pair per element and
//! re-derives everything a bit-serial cycle needs — partial sums, margins —
//! by walking all `d` elements again on every call. That is faithful to the
//! hardware but wasteful in software: the simulator's inner loop calls it
//! `s × s × cycles` times per head.
//!
//! [`KPlanes`] is the same information laid out for incremental arithmetic:
//! one `d`-wide bitmask per magnitude bit (plane `b` has bit `i` set when
//! element `i`'s magnitude has bit `b` set), plus a sign mask and a
//! nonzero-magnitude mask. Two identities make the per-cycle work collapse:
//!
//! * the partial-sum **delta** of cycle `c` is exactly the contribution of
//!   the newly revealed planes, `Σ_{b ∈ revealed(c)} 2^b · S_b` with
//!   `S_b = Σ_{i ∈ plane_b} sign_i(K) · q_i`, so the partial sum never has
//!   to be recomputed from scratch; and
//! * the conservative margin factors as
//!   `max_remaining_magnitude(c) × Σ_{concordant} |q_i|`, where the
//!   concordant-pair sum is a property of the (Q row, K column) pair alone —
//!   computable **once** in O(d) instead of once per cycle.
//!
//! The masks are `u64` words, so sign concordance and plane membership
//! become word-wide boolean algebra. `leopard-accel`'s row-batched kernel
//! builds on this layout; the helpers here are the (slow, obviously correct)
//! reference semantics the property tests pin against [`BitSerialVector`].

use crate::bitserial::BitSerialVector;
use crate::signmag::SignMagnitude;
use serde::{Deserialize, Serialize};

/// A key vector decomposed into per-magnitude-bit bitmasks ("planes"), a
/// sign mask, and a nonzero-magnitude mask. See the module docs for why this
/// layout makes bit-serial simulation incremental.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KPlanes {
    magnitude_bits: u32,
    len: usize,
    words: usize,
    /// Flattened planes: plane `b` occupies `[b * words, (b + 1) * words)`.
    planes: Vec<u64>,
    /// Bit `i` set when element `i` is negative.
    sign_mask: Vec<u64>,
    /// Bit `i` set when element `i`'s magnitude is nonzero.
    nonzero_mask: Vec<u64>,
}

impl KPlanes {
    /// Decomposes a slice of quantized codes into bit planes.
    ///
    /// # Panics
    ///
    /// Panics if `magnitude_bits` is not in `1..=31` or any magnitude does
    /// not fit in `magnitude_bits` bits (the same contract as
    /// [`BitSerialVector::new`]).
    pub fn new(codes: &[i32], magnitude_bits: u32) -> Self {
        assert!(
            (1..=31).contains(&magnitude_bits),
            "magnitude bits in 1..=31"
        );
        let max_mag = (1u32 << magnitude_bits) - 1;
        let len = codes.len();
        let words = len.div_ceil(64).max(1);
        let mut planes = vec![0u64; magnitude_bits as usize * words];
        let mut sign_mask = vec![0u64; words];
        let mut nonzero_mask = vec![0u64; words];
        for (i, &code) in codes.iter().enumerate() {
            let sm = SignMagnitude::from_code(code);
            assert!(
                sm.magnitude <= max_mag,
                "magnitude {} does not fit in {} bits",
                sm.magnitude,
                magnitude_bits
            );
            let (w, bit) = (i / 64, 1u64 << (i % 64));
            if sm.negative {
                sign_mask[w] |= bit;
            }
            if sm.magnitude != 0 {
                nonzero_mask[w] |= bit;
            }
            for b in 0..magnitude_bits {
                if sm.magnitude & (1 << b) != 0 {
                    planes[b as usize * words + w] |= bit;
                }
            }
        }
        Self {
            magnitude_bits,
            len,
            words,
            planes,
            sign_mask,
            nonzero_mask,
        }
    }

    /// Decomposes an already bit-serial vector (same elements, same
    /// magnitude width).
    pub fn from_vector(v: &BitSerialVector) -> Self {
        let codes: Vec<i32> = (0..v.len()).map(|i| v.element(i).to_code()).collect();
        Self::new(&codes, v.plan().magnitude_bits)
    }

    /// Number of magnitude bits (planes).
    pub fn magnitude_bits(&self) -> u32 {
        self.magnitude_bits
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of `u64` words per mask (`ceil(len / 64)`, at least 1).
    pub fn words(&self) -> usize {
        self.words
    }

    /// The bitmask of plane `b` (weight `2^b`).
    ///
    /// # Panics
    ///
    /// Panics if `b >= magnitude_bits`.
    pub fn plane(&self, b: u32) -> &[u64] {
        assert!(b < self.magnitude_bits, "plane index out of range");
        let w = self.words;
        &self.planes[b as usize * w..(b as usize + 1) * w]
    }

    /// The sign mask (bit `i` set when element `i` is negative).
    pub fn sign_mask(&self) -> &[u64] {
        &self.sign_mask
    }

    /// The nonzero-magnitude mask.
    pub fn nonzero_mask(&self) -> &[u64] {
        &self.nonzero_mask
    }

    /// Reference semantics of one plane's signed Q sum:
    /// `S_b = Σ_{i ∈ plane_b} sign_i(K) · q_i`.
    ///
    /// # Panics
    ///
    /// Panics if `q_codes.len()` differs from the vector length.
    pub fn signed_plane_sum(&self, b: u32, q_codes: &[i32]) -> i64 {
        assert_eq!(q_codes.len(), self.len, "dimension mismatch");
        let mut sum = 0i64;
        for (w, (&p, &s)) in self.plane(b).iter().zip(self.sign_mask.iter()).enumerate() {
            let mut pos = p & !s;
            while pos != 0 {
                let i = w * 64 + pos.trailing_zeros() as usize;
                sum += q_codes[i] as i64;
                pos &= pos - 1;
            }
            let mut neg = p & s;
            while neg != 0 {
                let i = w * 64 + neg.trailing_zeros() as usize;
                sum -= q_codes[i] as i64;
                neg &= neg - 1;
            }
        }
        sum
    }

    /// The partial dot product once the top `seen_bits` magnitude bits have
    /// been revealed (MSB first): `Σ_{b ≥ magnitude_bits - seen} 2^b · S_b`.
    /// With `seen_bits = magnitude_bits` this is the exact dot product.
    ///
    /// # Panics
    ///
    /// Panics if `seen_bits > magnitude_bits` or the lengths mismatch.
    pub fn partial_dot_seen(&self, q_codes: &[i32], seen_bits: u32) -> i64 {
        assert!(seen_bits <= self.magnitude_bits, "seen bits out of range");
        (self.magnitude_bits - seen_bits..self.magnitude_bits)
            .map(|b| self.signed_plane_sum(b, q_codes) << b)
            .sum()
    }

    /// The exact dot product with a full-precision Q vector.
    pub fn full_dot(&self, q_codes: &[i32]) -> i64 {
        self.partial_dot_seen(q_codes, self.magnitude_bits)
    }

    /// The concordant-pair |Q| sum: `Σ |q_i|` over pairs where `q_i != 0`,
    /// the K magnitude is nonzero, and the signs agree. The conservative
    /// margin after `c` cycles is exactly
    /// `max_remaining_magnitude(c) × concordant_abs_sum` — one multiply per
    /// cycle instead of an O(d) rescan.
    ///
    /// # Panics
    ///
    /// Panics if `q_codes.len()` differs from the vector length.
    pub fn concordant_abs_sum(&self, q_codes: &[i32]) -> i64 {
        assert_eq!(q_codes.len(), self.len, "dimension mismatch");
        let mut sum = 0i64;
        for w in 0..self.words {
            let base = w * 64;
            let limit = (self.len - base).min(64);
            let mut q_pos = 0u64;
            let mut q_neg = 0u64;
            for (j, &q) in q_codes[base..base + limit].iter().enumerate() {
                if q > 0 {
                    q_pos |= 1 << j;
                } else if q < 0 {
                    q_neg |= 1 << j;
                }
            }
            let mut concordant =
                ((self.sign_mask[w] & q_neg) | (!self.sign_mask[w] & q_pos)) & self.nonzero_mask[w];
            while concordant != 0 {
                let i = base + concordant.trailing_zeros() as usize;
                sum += q_codes[i].unsigned_abs() as i64;
                concordant &= concordant - 1;
            }
        }
        sum
    }
}

/// Structure-of-arrays bit-plane storage for a whole *set* of K columns.
///
/// [`KPlanes`] packs one column's planes over its `d` elements; a head
/// simulation holds `s` of them and the batched kernel walks them column by
/// column. `KPlanesSoa` transposes that layout: for every `(magnitude bit,
/// element)` pair it stores one `u64` word **per 64 K columns**, so
/// column-set bookkeeping — which columns are still alive in the reveal
/// window, which columns have a given bit at all, population counts over the
/// column set — becomes word-wide boolean algebra instead of per-column
/// loops. `leopard-accel`'s batched v2 kernel derives its packed per-cycle
/// operand matrices from this layout.
///
/// # Tail-mask invariant
///
/// When `cols` is not a multiple of 64, the final word of every mask has
/// `64 - cols % 64` trailing bits that correspond to no column. Those bits
/// are **always zero** in the stored masks (the builders only ever set bits
/// for real columns), and every consumer that *constructs* column-set words
/// (e.g. an all-alive mask of `!0u64`) must intersect the final word with
/// [`tail_mask`](Self::tail_mask) before popcounts or bit scans — otherwise
/// the garbage bits beyond `cols` count as phantom columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KPlanesSoa {
    magnitude_bits: u32,
    /// Number of K columns (`s`).
    cols: usize,
    /// Elements per column (`d`).
    len: usize,
    /// Words per column-set mask: `ceil(cols / 64)` (0 when `cols == 0`).
    col_words: usize,
    /// Transposed planes: bit `j % 64` of
    /// `planes_t[(b * len + i) * col_words + j / 64]` is set when column
    /// `j`'s element `i` has magnitude bit `b` set.
    planes_t: Vec<u64>,
    /// Transposed sign masks: `sign_t[i * col_words + w]` over columns.
    sign_t: Vec<u64>,
    /// Transposed nonzero-magnitude masks, same indexing as `sign_t`.
    nonzero_t: Vec<u64>,
}

impl KPlanesSoa {
    /// Builds the transposed layout from per-column quantized codes.
    ///
    /// # Panics
    ///
    /// Panics if `magnitude_bits` is not in `1..=31`, the columns do not all
    /// share one length, or any magnitude does not fit in `magnitude_bits`
    /// bits.
    pub fn from_codes(columns: &[Vec<i32>], magnitude_bits: u32) -> Self {
        assert!(
            (1..=31).contains(&magnitude_bits),
            "magnitude bits in 1..=31"
        );
        let max_mag = (1u32 << magnitude_bits) - 1;
        let cols = columns.len();
        let len = columns.first().map_or(0, Vec::len);
        let col_words = cols.div_ceil(64);
        let mut soa = Self {
            magnitude_bits,
            cols,
            len,
            col_words,
            planes_t: vec![0u64; magnitude_bits as usize * len * col_words],
            sign_t: vec![0u64; len * col_words],
            nonzero_t: vec![0u64; len * col_words],
        };
        for (j, column) in columns.iter().enumerate() {
            assert_eq!(column.len(), len, "columns must share one length");
            let (w, bit) = (j / 64, 1u64 << (j % 64));
            for (i, &code) in column.iter().enumerate() {
                let sm = SignMagnitude::from_code(code);
                assert!(
                    sm.magnitude <= max_mag,
                    "magnitude {} does not fit in {} bits",
                    sm.magnitude,
                    magnitude_bits
                );
                if sm.negative {
                    soa.sign_t[i * col_words + w] |= bit;
                }
                if sm.magnitude != 0 {
                    soa.nonzero_t[i * col_words + w] |= bit;
                }
                for b in 0..magnitude_bits {
                    if sm.magnitude & (1 << b) != 0 {
                        soa.planes_t[(b as usize * len + i) * col_words + w] |= bit;
                    }
                }
            }
        }
        soa
    }

    /// Builds the transposed layout from per-column [`KPlanes`] (the exact
    /// transpose of the per-column masks — no re-decomposition).
    ///
    /// `magnitude_bits` is taken as a parameter so the zero-column case stays
    /// well-formed; every column must have been decomposed at that width.
    ///
    /// # Panics
    ///
    /// Panics if `magnitude_bits` is not in `1..=31`, or any column's width
    /// or length disagrees.
    pub fn from_planes(planes: &[KPlanes], magnitude_bits: u32) -> Self {
        assert!(
            (1..=31).contains(&magnitude_bits),
            "magnitude bits in 1..=31"
        );
        let cols = planes.len();
        let len = planes.first().map_or(0, KPlanes::len);
        let col_words = cols.div_ceil(64);
        let mut soa = Self {
            magnitude_bits,
            cols,
            len,
            col_words,
            planes_t: vec![0u64; magnitude_bits as usize * len * col_words],
            sign_t: vec![0u64; len * col_words],
            nonzero_t: vec![0u64; len * col_words],
        };
        for (j, column) in planes.iter().enumerate() {
            assert_eq!(
                column.magnitude_bits(),
                magnitude_bits,
                "column decomposed at a different magnitude width"
            );
            assert_eq!(column.len(), len, "columns must share one length");
            let (w, bit) = (j / 64, 1u64 << (j % 64));
            let word_of = |mask: &[u64], i: usize| mask[i / 64] >> (i % 64) & 1 != 0;
            for i in 0..len {
                if word_of(column.sign_mask(), i) {
                    soa.sign_t[i * col_words + w] |= bit;
                }
                if word_of(column.nonzero_mask(), i) {
                    soa.nonzero_t[i * col_words + w] |= bit;
                }
                for b in 0..magnitude_bits {
                    if word_of(column.plane(b), i) {
                        soa.planes_t[(b as usize * len + i) * col_words + w] |= bit;
                    }
                }
            }
        }
        soa
    }

    /// Number of magnitude bits (planes).
    pub fn magnitude_bits(&self) -> u32 {
        self.magnitude_bits
    }

    /// Number of K columns in the set.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the set has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols == 0
    }

    /// Elements per column (`d`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of `u64` words per column-set mask (`ceil(cols / 64)`; 0 when
    /// the set is empty).
    pub fn col_words(&self) -> usize {
        self.col_words
    }

    /// The valid-column bits of the **final** mask word: all-ones when
    /// `cols` is a positive multiple of 64, zero when the set is empty.
    /// Any constructed column-set word (an all-alive mask, a complement)
    /// must be intersected with this before popcounts or bit scans — see
    /// the tail-mask invariant in the type docs.
    pub fn tail_mask(&self) -> u64 {
        match self.cols % 64 {
            0 if self.cols == 0 => 0,
            0 => u64::MAX,
            rem => (1u64 << rem) - 1,
        }
    }

    /// The column-set words of magnitude bit `b` for element `i`: bit `j`
    /// of word `j / 64` is set when column `j`'s element `i` has bit `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= magnitude_bits` or `i >= len`.
    pub fn plane_row(&self, b: u32, i: usize) -> &[u64] {
        assert!(b < self.magnitude_bits, "plane index out of range");
        assert!(i < self.len, "element index out of range");
        let base = (b as usize * self.len + i) * self.col_words;
        &self.planes_t[base..base + self.col_words]
    }

    /// The column-set sign words for element `i` (bit set ⇒ negative).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn sign_row(&self, i: usize) -> &[u64] {
        assert!(i < self.len, "element index out of range");
        &self.sign_t[i * self.col_words..(i + 1) * self.col_words]
    }

    /// The column-set nonzero-magnitude words for element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn nonzero_row(&self, i: usize) -> &[u64] {
        assert!(i < self.len, "element index out of range");
        &self.nonzero_t[i * self.col_words..(i + 1) * self.col_words]
    }

    /// Column-occupancy words of magnitude bit `b`: bit `j` set when *any*
    /// element of column `j` has bit `b`. One word covers 64 columns.
    ///
    /// # Panics
    ///
    /// Panics if `b >= magnitude_bits`.
    pub fn occupancy(&self, b: u32) -> Vec<u64> {
        assert!(b < self.magnitude_bits, "plane index out of range");
        let mut words = vec![0u64; self.col_words];
        for i in 0..self.len {
            for (acc, &word) in words.iter_mut().zip(self.plane_row(b, i)) {
                *acc |= word;
            }
        }
        words
    }

    /// Total set bits of plane `b` over the whole column set — one popcount
    /// pass per 64 columns per element. The stored words carry no garbage
    /// beyond `cols` (the tail-mask invariant), so the count is exact at any
    /// column count.
    ///
    /// # Panics
    ///
    /// Panics if `b >= magnitude_bits`.
    pub fn plane_popcount(&self, b: u32) -> u64 {
        assert!(b < self.magnitude_bits, "plane index out of range");
        let base = b as usize * self.len * self.col_words;
        self.planes_t[base..base + self.len * self.col_words]
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum()
    }

    /// Reconstructs the signed codes of column `j` (diagnostic / test
    /// helper; the kernel reads the packed words directly).
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn column_codes(&self, j: usize) -> Vec<i32> {
        assert!(j < self.cols, "column index out of range");
        let (w, bit) = (j / 64, 1u64 << (j % 64));
        (0..self.len)
            .map(|i| {
                let mut mag = 0i32;
                for b in 0..self.magnitude_bits {
                    if self.plane_row(b, i)[w] & bit != 0 {
                        mag |= 1 << b;
                    }
                }
                if self.sign_row(i)[w] & bit != 0 {
                    -mag
                } else {
                    mag
                }
            })
            .collect()
    }

    /// The column-major signed operand matrix with every magnitude bit below
    /// `low_cut` zeroed: entry `j * len + i` is
    /// `sign_ji · (mag_ji & !(2^low_cut - 1))`.
    ///
    /// This is the MSB-first reveal window as a dense operand: after the
    /// cycle that reveals bits down to `low_cut`, the partial dot product of
    /// a full-precision Q row with column `j` is **exactly**
    /// `Σ_i q_i · truncated_ji` — the identity
    /// [`KPlanes::partial_dot_seen`] pins, restated so the batched kernel
    /// can compute per-cycle partials as plain dense dot products.
    ///
    /// # Panics
    ///
    /// Panics if `low_cut > magnitude_bits`.
    pub fn truncated_codes(&self, low_cut: u32) -> Vec<i32> {
        assert!(
            low_cut <= self.magnitude_bits,
            "truncation cut out of range"
        );
        let mut out = vec![0i32; self.cols * self.len];
        for b in low_cut..self.magnitude_bits {
            let weight = 1i32 << b;
            for i in 0..self.len {
                for (w, &word) in self.plane_row(b, i).iter().enumerate() {
                    let mut m = word;
                    while m != 0 {
                        let j = w * 64 + m.trailing_zeros() as usize;
                        out[j * self.len + i] += weight;
                        m &= m - 1;
                    }
                }
            }
        }
        for i in 0..self.len {
            for (w, &word) in self.sign_row(i).iter().enumerate() {
                let mut m = word;
                while m != 0 {
                    let j = w * 64 + m.trailing_zeros() as usize;
                    out[j * self.len + i] = -out[j * self.len + i];
                    m &= m - 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitserial::BitSerialPlan;
    use proptest::prelude::*;

    #[test]
    fn planes_mirror_magnitude_bits() {
        // magnitude 0b101 = 5, negative; magnitude 0b011 = 3, positive; zero.
        let p = KPlanes::new(&[-5, 3, 0], 3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.words(), 1);
        assert_eq!(p.plane(0)[0], 0b011); // bit 0 set in |−5| and |3|
        assert_eq!(p.plane(1)[0], 0b010); // bit 1 set in |3|
        assert_eq!(p.plane(2)[0], 0b001); // bit 2 set in |−5|
        assert_eq!(p.sign_mask()[0], 0b001);
        assert_eq!(p.nonzero_mask()[0], 0b011);
    }

    #[test]
    fn full_dot_matches_direct_product() {
        let k = [1000i32, -731, 512, -3, 0, 2047];
        let q = [9i32, -5, 7, -2, 1234, -1];
        let p = KPlanes::new(&k, 11);
        let exact: i64 = k
            .iter()
            .zip(q.iter())
            .map(|(&a, &b)| a as i64 * b as i64)
            .sum();
        assert_eq!(p.full_dot(&q), exact);
    }

    #[test]
    fn concordant_sum_matches_margin_filter() {
        let k = [901i32, -2047, 13, 768, -55, 0, 1200, -640];
        let q = [-2047i32, 1024, 555, -77, 2000, 1, -900, 333];
        let p = KPlanes::new(&k, 11);
        let plan = BitSerialPlan::new(11, 2);
        let v = BitSerialVector::new(&k, plan);
        for cyc in 0..=plan.total_cycles() {
            let mrm = plan.max_remaining_magnitude(cyc) as i64;
            assert_eq!(mrm * p.concordant_abs_sum(&q), v.margin(&q, cyc));
        }
    }

    #[test]
    fn multi_word_vectors_cross_the_u64_boundary() {
        let k: Vec<i32> = (0..100).map(|i| (i * 37 % 4093) - 2046).collect();
        let q: Vec<i32> = (0..100).map(|i| (i * 53 % 4093) - 2046).collect();
        let p = KPlanes::new(&k, 11);
        assert_eq!(p.words(), 2);
        let plan = BitSerialPlan::new(11, 2);
        let v = BitSerialVector::new(&k, plan);
        assert_eq!(p.full_dot(&q), v.full_dot(&q));
        for cyc in 0..=plan.total_cycles() {
            assert_eq!(
                p.partial_dot_seen(&q, plan.bits_after(cyc)),
                v.partial_dot(&q, cyc)
            );
        }
    }

    #[test]
    fn from_vector_round_trips() {
        let k = [44i32, -7, 0, 2047, -2047];
        let plan = BitSerialPlan::new(11, 2);
        let v = BitSerialVector::new(&k, plan);
        assert_eq!(KPlanes::from_vector(&v), KPlanes::new(&k, 11));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_magnitude_panics() {
        let _ = KPlanes::new(&[100], 4);
    }

    /// Deterministic pseudo-random column set for the SoA tests.
    fn soa_columns(cols: usize, len: usize, seed: i32) -> Vec<Vec<i32>> {
        (0..cols)
            .map(|j| {
                (0..len)
                    .map(|i| {
                        (j as i32 * 131 + i as i32 * 37 + seed).wrapping_mul(2654435761u32 as i32)
                            % 2047
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn soa_round_trips_every_column() {
        let columns = soa_columns(70, 9, 3);
        let soa = KPlanesSoa::from_codes(&columns, 11);
        assert_eq!(soa.cols(), 70);
        assert_eq!(soa.len(), 9);
        assert_eq!(soa.col_words(), 2);
        for (j, column) in columns.iter().enumerate() {
            assert_eq!(
                &soa.column_codes(j),
                column,
                "column {j} did not round-trip"
            );
        }
    }

    #[test]
    fn soa_from_planes_equals_from_codes() {
        let columns = soa_columns(23, 7, 9);
        let planes: Vec<KPlanes> = columns.iter().map(|c| KPlanes::new(c, 11)).collect();
        assert_eq!(
            KPlanesSoa::from_planes(&planes, 11),
            KPlanesSoa::from_codes(&columns, 11)
        );
    }

    /// The tail-mask invariant at the two boundary column counts the kernel
    /// fix pinned (`s = 23`: one partial word; `s = 65`: a full word plus a
    /// one-bit tail): stored mask words carry no garbage beyond `cols`, so
    /// popcounts agree with the per-column scalar reference exactly.
    #[test]
    fn soa_tail_words_are_clean_at_boundary_column_counts() {
        for cols in [23usize, 65] {
            let columns = soa_columns(cols, 12, cols as i32);
            let soa = KPlanesSoa::from_codes(&columns, 11);
            let tail = soa.tail_mask();
            assert_eq!(tail, (1u64 << (cols % 64)) - 1);
            let last = soa.col_words() - 1;
            for b in 0..soa.magnitude_bits() {
                // Per-column scalar reference count of set bits in plane b.
                let reference: u64 = columns
                    .iter()
                    .flatten()
                    .map(|&code| u64::from(SignMagnitude::from_code(code).magnitude >> b & 1))
                    .sum();
                assert_eq!(soa.plane_popcount(b), reference, "plane {b} at s={cols}");
                let occupancy = soa.occupancy(b);
                assert_eq!(occupancy[last] & !tail, 0, "occupancy tail garbage");
                for i in 0..soa.len() {
                    assert_eq!(soa.plane_row(b, i)[last] & !tail, 0, "plane tail garbage");
                }
            }
            for i in 0..soa.len() {
                assert_eq!(soa.sign_row(i)[last] & !tail, 0);
                assert_eq!(soa.nonzero_row(i)[last] & !tail, 0);
            }
            // An all-alive mask built the way the kernel builds it (all-ones
            // intersected with the tail mask) counts exactly `cols` columns.
            let alive: u64 = (0..soa.col_words())
                .map(|w| {
                    let word = if w == last { tail } else { u64::MAX };
                    u64::from(word.count_ones())
                })
                .sum();
            assert_eq!(alive, cols as u64);
        }
    }

    #[test]
    fn soa_truncations_match_partial_dot_reference() {
        let columns = soa_columns(65, 8, 7);
        let q: Vec<i32> = (0..8).map(|i| (i * 97 % 2047) - 1023).collect();
        let planes: Vec<KPlanes> = columns.iter().map(|c| KPlanes::new(c, 11)).collect();
        let soa = KPlanesSoa::from_planes(&planes, 11);
        for seen in 0..=11u32 {
            let trunc = soa.truncated_codes(11 - seen);
            for (j, plane) in planes.iter().enumerate() {
                let dense: i64 = trunc[j * 8..(j + 1) * 8]
                    .iter()
                    .zip(&q)
                    .map(|(&t, &qi)| t as i64 * qi as i64)
                    .sum();
                assert_eq!(
                    dense,
                    plane.partial_dot_seen(&q, seen),
                    "column {j}, {seen} bits seen"
                );
            }
        }
    }

    #[test]
    fn soa_empty_and_degenerate_sets_are_well_formed() {
        let empty = KPlanesSoa::from_codes(&[], 11);
        assert!(empty.is_empty());
        assert_eq!(empty.col_words(), 0);
        assert_eq!(empty.tail_mask(), 0);
        let exact = KPlanesSoa::from_codes(&soa_columns(64, 3, 1), 11);
        assert_eq!(exact.col_words(), 1);
        assert_eq!(exact.tail_mask(), u64::MAX);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The bit-plane decomposition replays *exactly* the partial sums of
        /// the element-wise bit-serial reference, at every cycle, for every
        /// granularity the design space explores. This is the identity the
        /// incremental kernel's deltas rest on.
        #[test]
        fn prop_partial_sums_match_bitserial_reference(
            pairs in proptest::collection::vec((-2047i32..=2047, -2047i32..=2047), 1..80),
            bits_per_cycle in 1u32..=4,
        ) {
            let k: Vec<i32> = pairs.iter().map(|p| p.0).collect();
            let q: Vec<i32> = pairs.iter().map(|p| p.1).collect();
            let plan = BitSerialPlan::new(11, bits_per_cycle);
            let v = BitSerialVector::new(&k, plan);
            let p = KPlanes::new(&k, 11);
            for cyc in 0..=plan.total_cycles() {
                prop_assert_eq!(
                    p.partial_dot_seen(&q, plan.bits_after(cyc)),
                    v.partial_dot(&q, cyc)
                );
            }
        }

        /// The factored margin — one concordant |Q| sum times the per-cycle
        /// remaining-magnitude cap — equals the reference margin exactly.
        #[test]
        fn prop_factored_margin_matches_bitserial_reference(
            pairs in proptest::collection::vec((-2047i32..=2047, -2047i32..=2047), 1..80),
            bits_per_cycle in 1u32..=4,
        ) {
            let k: Vec<i32> = pairs.iter().map(|p| p.0).collect();
            let q: Vec<i32> = pairs.iter().map(|p| p.1).collect();
            let plan = BitSerialPlan::new(11, bits_per_cycle);
            let v = BitSerialVector::new(&k, plan);
            let p = KPlanes::new(&k, 11);
            let concordant = p.concordant_abs_sum(&q);
            for cyc in 0..=plan.total_cycles() {
                let mrm = plan.max_remaining_magnitude(cyc) as i64;
                prop_assert_eq!(mrm * concordant, v.margin(&q, cyc));
            }
        }

        /// The SoA transpose is lossless at any column count (tail words
        /// included) and its truncated operands replay the MSB-first
        /// partial-dot identity for every reveal schedule.
        #[test]
        fn prop_soa_transpose_is_lossless_and_truncations_are_exact(
            cols in 1usize..70,
            len in 1usize..16,
            seed in 0i32..1000,
            bits_per_cycle in 1u32..=4,
        ) {
            let columns = soa_columns(cols, len, seed);
            let q: Vec<i32> = (0..len as i32).map(|i| (i * 211 + seed) % 2047).collect();
            let soa = KPlanesSoa::from_codes(&columns, 11);
            for (j, column) in columns.iter().enumerate() {
                prop_assert_eq!(&soa.column_codes(j), column);
            }
            let plan = BitSerialPlan::new(11, bits_per_cycle);
            for cyc in 0..=plan.total_cycles() {
                let trunc = soa.truncated_codes(plan.remaining_bits(cyc));
                for (j, column) in columns.iter().enumerate() {
                    let dense: i64 = trunc[j * len..(j + 1) * len]
                        .iter()
                        .zip(&q)
                        .map(|(&t, &qi)| t as i64 * qi as i64)
                        .sum();
                    let reference = KPlanes::new(column, 11)
                        .partial_dot_seen(&q, plan.bits_after(cyc));
                    prop_assert_eq!(dense, reference);
                }
            }
        }
    }
}
