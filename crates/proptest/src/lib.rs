//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of proptest's API the workspace property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), numeric
//! range strategies, tuple strategies, `collection::vec`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! `ProptestConfig::with_cases`. Cases are generated from a deterministic
//! RNG seeded by the test name, so failures reproduce exactly; there is no
//! shrinking — the failing inputs are printed instead.
//!
//! The `PROPTEST_CASES` environment variable raises the case count of
//! every property — including those with an explicit `with_cases` (it
//! never lowers one) — so CI can run a bumped job over the differential
//! suites without code changes.

#![warn(rust_2018_idioms)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property. As with
    /// the default, `PROPTEST_CASES` can *raise* the count (CI runs a
    /// bumped job over the differential suites); it never lowers an
    /// explicit request.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases: effective_cases(cases, env_cases()),
        }
    }
}

/// The effective case count given an explicit request and the
/// `PROPTEST_CASES` override: the override raises, never lowers. Pure so
/// it is testable without touching the (process-global) environment.
fn effective_cases(explicit: u32, env: Option<u32>) -> u32 {
    env.map_or(explicit, |env| env.max(explicit))
}

/// Parses one `PROPTEST_CASES` value; unparseable text is ignored.
fn parse_env_cases(value: &str) -> Option<u32> {
    value.trim().parse().ok()
}

/// The `PROPTEST_CASES` environment override, if set and parseable. Read
/// at config-construction time, never written by this crate — tests
/// exercise [`effective_cases`]/[`parse_env_cases`] instead of mutating
/// the environment (concurrent `set_var`/`var` is a data race under the
/// parallel test harness).
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()
        .as_deref()
        .and_then(parse_env_cases)
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: effective_cases(256, env_cases()),
        }
    }
}

/// Deterministic case-generator handed to strategies.
#[derive(Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the generator from a test name so every run of a given test
    /// sees the same case sequence.
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    fn bits(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Value-generation strategies, mirroring `proptest::strategy::Strategy`
/// in spirit (generation only — no shrinking).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.bits() as u128 * span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = ((rng.bits() as u128 * span) >> 64) as i128;
                (start as i128 + offset) as $t
            }
        }
    )+};
}

impl_int_strategy!(i32, i64, u32, u64, usize);

macro_rules! impl_float_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = ((rng.bits() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * u as $t
            }
        }
    )+};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vector of values from `element`, with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a property, reporting the failing case
/// instead of panicking mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(::std::format!(
                "{} (left: {:?}, right: {:?})",
                ::std::format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(true);
        }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item-by-item expansion for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(::core::stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<bool, ::std::string::String> = (|| {
                    $body
                    ::core::result::Result::Ok(false)
                })();
                if let ::core::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "property {} failed at case {case}: {message}\n  inputs: {:?}",
                        ::core::stringify!($name),
                        ($(&$arg,)+)
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn proptest_cases_env_raises_but_never_lowers() {
        // The resolution logic is pure — tested directly, without
        // set_var (mutating the environment races the parallel test
        // harness's other properties, which read it at config time).
        assert_eq!(crate::effective_cases(256, None), 256);
        assert_eq!(crate::effective_cases(64, None), 64);
        assert_eq!(crate::effective_cases(256, Some(512)), 512);
        assert_eq!(crate::effective_cases(64, Some(512)), 512, "env raises");
        assert_eq!(
            crate::effective_cases(64, Some(8)),
            64,
            "env never lowers an explicit request"
        );
        assert_eq!(crate::parse_env_cases(" 512 "), Some(512));
        assert_eq!(crate::parse_env_cases("zebra"), None, "bad values ignored");
        assert_eq!(crate::parse_env_cases(""), None);
    }

    #[test]
    fn strategies_are_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let s = -100i32..=100;
        let va: Vec<i32> = (0..16).map(|_| s.generate(&mut a)).collect();
        let vb: Vec<i32> = (0..16).map(|_| s.generate(&mut b)).collect();
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn self_test_ranges_and_vecs(
            x in -5i32..=5,
            v in collection::vec((0u32..10, -1.0f32..1.0), 1..8),
        ) {
            prop_assert!((-5..=5).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (n, f) in &v {
                prop_assert!(*n < 10, "n was {n}");
                prop_assert!((-1.0..1.0).contains(f));
            }
        }

        #[test]
        fn self_test_assume_skips(a in -2i32..=2) {
            prop_assume!(a != 0);
            prop_assert!(a != 0);
        }
    }
}
