//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! small slice of rand's API the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}`, and
//! `distributions::Uniform` — backed by a xoshiro256++ generator seeded
//! through SplitMix64. Streams are deterministic for a given seed and stable
//! forever (unlike the real `StdRng`, whose streams may change between rand
//! versions), which is exactly what a bit-reproducible paper harness wants.

#![warn(rust_2018_idioms)]
#![warn(missing_docs)]

/// Pseudo-random generator types.
pub mod rngs {
    /// Deterministic xoshiro256++ generator, the workspace's only RNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_raw(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seeding interface mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro256++ state, as
        // recommended by the xoshiro authors.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

/// Types samplable by [`Rng::gen`]: `f32`/`f64` uniform in `[0, 1)`,
/// integers uniform over their full range.
pub trait Standard: Sized {
    /// Converts 64 raw random bits into a sample.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        // 24 high bits -> uniform [0, 1) at f32 mantissa resolution.
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits >> 63 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((bits() as u128 * span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = ((bits() as u128 * span) >> 64) as i128;
                (start as i128 + offset) as $t
            }
        }
    )+};
}

impl_int_sample_range!(i32, i64, u32, u64, usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = ((bits() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * u as $t
            }
        }
    )+};
}

impl_float_sample_range!(f32, f64);

/// Sampling interface mirroring the parts of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distribution type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let mut this = self;
        range.sample_from(&mut move || this.next_u64())
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

/// Uniform distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::rngs::StdRng;
    use super::Rng;

    /// Distribution sampling interface.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample(&self, rng: &mut StdRng) -> T;
    }

    /// Uniform `f32` distribution over a closed interval.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform {
        lo: f32,
        hi: f32,
    }

    impl Uniform {
        /// Uniform over `[lo, hi]`.
        ///
        /// # Panics
        ///
        /// Panics if `lo > hi`.
        pub fn new_inclusive(lo: f32, hi: f32) -> Self {
            assert!(lo <= hi, "uniform bounds must satisfy lo <= hi");
            Self { lo, hi }
        }
    }

    impl Distribution<f32> for Uniform {
        fn sample(&self, rng: &mut StdRng) -> f32 {
            let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            self.lo + (self.hi - self.lo) * u
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_f32_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
            let f = r.gen_range(-4.0f32..4.0);
            assert!((-4.0..4.0).contains(&f));
        }
        // Inclusive upper bound is actually reachable.
        let mut hits = 0;
        for _ in 0..2000 {
            if r.gen_range(0i32..=3) == 3 {
                hits += 1;
            }
        }
        assert!(hits > 0);
    }

    #[test]
    fn uniform_distribution_covers_interval() {
        use distributions::{Distribution, Uniform};
        let d = Uniform::new_inclusive(-1.0, 1.0);
        let mut r = StdRng::seed_from_u64(3);
        let mean: f32 = (0..4000).map(|_| d.sample(&mut r)).sum::<f32>() / 4000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
