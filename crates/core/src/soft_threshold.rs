//! The differentiable soft-threshold pruning operation (Equation 6).
//!
//! The ideal pruning operation keeps a score unchanged when it is at or above
//! the threshold `Th` and replaces it with a large negative constant when it
//! is below, so that the following softmax drives its probability to zero.
//! That step function is not differentiable at `x = Th`, so the paper blends
//! both branches with a `tanh` whose sharpness `s` controls how closely the
//! approximation tracks the ideal operation:
//!
//! * for `x >= Th` the output is `x * tanh(s (x - Th))`, which approaches `x`
//!   away from the threshold;
//! * for `x < Th` the output is `c * tanh(s (x - Th))`, which approaches `-c`
//!   away from the threshold (the paper uses `c = 1000`).
//!
//! Because both branches share the `tanh(s (x - Th))` factor, gradients flow
//! through the threshold as well as through the scores, which is exactly what
//! lets back-propagation *move* scores across the threshold and *move* the
//! threshold itself.

use leopard_autodiff::{Tape, Var};
use leopard_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the soft threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftThresholdConfig {
    /// Sharpness `s` of the `tanh` blend. The paper uses 10.
    pub sharpness: f32,
    /// Clip magnitude `c`: pruned scores asymptotically approach `-c`.
    /// The paper uses 1000.
    pub clip: f32,
}

impl Default for SoftThresholdConfig {
    fn default() -> Self {
        Self {
            sharpness: 10.0,
            clip: 1000.0,
        }
    }
}

impl SoftThresholdConfig {
    /// Creates a configuration, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sharpness` or `clip` is not strictly positive.
    pub fn new(sharpness: f32, clip: f32) -> Self {
        assert!(sharpness > 0.0, "sharpness must be positive");
        assert!(clip > 0.0, "clip must be positive");
        Self { sharpness, clip }
    }

    /// Forward value of the soft threshold for a single score.
    pub fn apply(&self, x: f32, threshold: f32) -> f32 {
        let t = (self.sharpness * (x - threshold)).tanh();
        if x >= threshold {
            x * t
        } else {
            self.clip * t
        }
    }

    /// Partial derivative of the output with respect to the score `x`.
    pub fn d_dx(&self, x: f32, threshold: f32) -> f32 {
        let u = self.sharpness * (x - threshold);
        let t = u.tanh();
        let sech2 = 1.0 - t * t;
        if x >= threshold {
            t + x * self.sharpness * sech2
        } else {
            self.clip * self.sharpness * sech2
        }
    }

    /// Partial derivative of the output with respect to the threshold `Th`.
    pub fn d_dth(&self, x: f32, threshold: f32) -> f32 {
        let u = self.sharpness * (x - threshold);
        let t = u.tanh();
        let sech2 = 1.0 - t * t;
        if x >= threshold {
            -x * self.sharpness * sech2
        } else {
            -self.clip * self.sharpness * sech2
        }
    }

    /// Applies the soft threshold element-wise to a matrix (forward only).
    pub fn apply_matrix(&self, scores: &Matrix, threshold: f32) -> Matrix {
        scores.map(|x| self.apply(x, threshold))
    }
}

/// Records the soft-threshold operation on a tape.
///
/// `scores` is an `s x s` node, `threshold` is a `1 x 1` node (the per-layer
/// learnable threshold). Returns the soft-thresholded score node. The
/// pullbacks implement the exact partial derivatives of Equation 6 with
/// respect to both inputs, so a single `Tape::backward` call co-optimizes
/// weights and thresholds, which is the heart of the paper's method.
///
/// # Panics
///
/// Panics if `threshold` is not a `1 x 1` node.
pub fn soft_threshold_op(
    tape: &Tape,
    scores: Var,
    threshold: Var,
    config: SoftThresholdConfig,
) -> Var {
    assert_eq!(
        tape.shape(threshold),
        (1, 1),
        "threshold must be a 1x1 scalar node"
    );
    let score_values = tape.value(scores);
    let th = tape.value(threshold)[(0, 0)];
    let output = config.apply_matrix(&score_values, th);

    let scores_for_dx = score_values.clone();
    let scores_for_dth = score_values;
    let cfg = config;
    tape.custom_binary(
        scores,
        threshold,
        output,
        move |upstream: &Matrix| {
            // dL/dscores = upstream ⊙ d_dx
            upstream.hadamard(&scores_for_dx.map(|x| cfg.d_dx(x, th)))
        },
        move |upstream: &Matrix| {
            // dL/dTh = Σ upstream ⊙ d_dth  (threshold is broadcast to all scores)
            let total: f32 = upstream
                .iter()
                .zip(scores_for_dth.iter())
                .map(|(&u, &x)| u * cfg.d_dth(x, th))
                .sum();
            Matrix::filled(1, 1, total)
        },
    )
}

/// The ideal (non-differentiable) pruning operation the soft threshold
/// approximates: scores below `threshold` become `-clip`, the rest pass
/// through unchanged. Used at inference time and by tests that check the
/// approximation quality.
pub fn hard_threshold(scores: &Matrix, threshold: f32, clip: f32) -> Matrix {
    scores.map(|x| if x >= threshold { x } else { -clip })
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_autodiff::gradcheck::check_unary;
    use leopard_tensor::rng;

    #[test]
    fn default_matches_paper_constants() {
        let cfg = SoftThresholdConfig::default();
        assert_eq!(cfg.sharpness, 10.0);
        assert_eq!(cfg.clip, 1000.0);
    }

    #[test]
    #[should_panic(expected = "sharpness must be positive")]
    fn rejects_nonpositive_sharpness() {
        let _ = SoftThresholdConfig::new(0.0, 1000.0);
    }

    #[test]
    fn far_above_threshold_passes_through() {
        let cfg = SoftThresholdConfig::default();
        let y = cfg.apply(2.0, 0.5);
        assert!((y - 2.0).abs() < 1e-3, "expected ~2.0, got {y}");
    }

    #[test]
    fn far_below_threshold_clips_to_minus_c() {
        let cfg = SoftThresholdConfig::default();
        let y = cfg.apply(-1.5, 0.5);
        assert!((y + cfg.clip).abs() < 1.0, "expected ~-1000, got {y}");
    }

    #[test]
    fn near_threshold_is_smooth_and_small() {
        let cfg = SoftThresholdConfig::default();
        // Exactly at the threshold the tanh factor is zero.
        assert_eq!(cfg.apply(0.5, 0.5), 0.0);
        // Slightly above/below remain finite and continuous-ish in value
        // (the branches agree at the threshold because both are ~0 there).
        let above = cfg.apply(0.5 + 1e-4, 0.5);
        let below = cfg.apply(0.5 - 1e-4, 0.5);
        assert!(above.abs() < 0.1);
        assert!(below.abs() < 2.0);
    }

    #[test]
    fn derivatives_match_finite_differences_away_from_branch_point() {
        let cfg = SoftThresholdConfig::new(10.0, 100.0);
        let th = 0.3;
        for &x in &[-0.6f32, -0.1, 0.25, 0.42, 0.9, 1.7] {
            let eps = 1e-3;
            // Skip points whose ±eps window straddles the branch boundary.
            if (x - th).abs() < 2.0 * eps {
                continue;
            }
            let numeric_dx = (cfg.apply(x + eps, th) - cfg.apply(x - eps, th)) / (2.0 * eps);
            let numeric_dth = (cfg.apply(x, th + eps) - cfg.apply(x, th - eps)) / (2.0 * eps);
            let tol = 0.05 * numeric_dx.abs().max(1.0);
            assert!(
                (numeric_dx - cfg.d_dx(x, th)).abs() < tol,
                "d_dx mismatch at x={x}: {numeric_dx} vs {}",
                cfg.d_dx(x, th)
            );
            let tol = 0.05 * numeric_dth.abs().max(1.0);
            assert!(
                (numeric_dth - cfg.d_dth(x, th)).abs() < tol,
                "d_dth mismatch at x={x}: {numeric_dth} vs {}",
                cfg.d_dth(x, th)
            );
        }
    }

    #[test]
    fn tape_op_gradients_match_finite_differences_for_scores() {
        // Use a gentle configuration so finite differences are well behaved.
        let cfg = SoftThresholdConfig::new(4.0, 10.0);
        let scores = rng::uniform_matrix(&mut rng::seeded(11), 3, 4, -1.0, 1.0);
        let err = check_unary(&scores, 5e-3, move |tape, s| {
            let th = tape.constant(Matrix::filled(1, 1, 0.2));
            let pruned = soft_threshold_op(tape, s, th, cfg);
            tape.sum(pruned)
        });
        assert!(err < 0.3, "score gradient error {err}");
    }

    #[test]
    fn tape_op_gradients_match_finite_differences_for_threshold() {
        let cfg = SoftThresholdConfig::new(4.0, 10.0);
        // Keep scores away from the threshold: the derivative has a branch
        // discontinuity at x == Th, where finite differences are invalid
        // (same guard as derivatives_match_finite_differences_away_from_
        // branch_point).
        let scores = rng::uniform_matrix(&mut rng::seeded(13), 4, 4, -1.0, 1.0).map(|x| {
            if (x - 0.15).abs() < 0.05 {
                x + 0.1
            } else {
                x
            }
        });
        let th0 = Matrix::filled(1, 1, 0.15);
        let s_fixed = scores;
        let err = check_unary(&th0, 5e-3, move |tape, th| {
            let s = tape.constant(s_fixed.clone());
            let pruned = soft_threshold_op(tape, s, th, cfg);
            tape.sum(pruned)
        });
        assert!(err < 0.5, "threshold gradient error {err}");
    }

    #[test]
    fn soft_threshold_approximates_hard_threshold_away_from_boundary() {
        let cfg = SoftThresholdConfig::default();
        let scores = rng::uniform_matrix(&mut rng::seeded(17), 8, 8, -2.0, 2.0);
        let th = 0.1;
        let soft = cfg.apply_matrix(&scores, th);
        let hard = hard_threshold(&scores, th, cfg.clip);
        let mut checked = 0;
        for (s, (&soft_v, &hard_v)) in scores.iter().zip(soft.iter().zip(hard.iter())) {
            if (s - th).abs() > 0.25 {
                checked += 1;
                assert!(
                    (soft_v - hard_v).abs() < 0.05 * hard_v.abs().max(1.0),
                    "mismatch at score {s}: soft {soft_v} vs hard {hard_v}"
                );
            }
        }
        assert!(checked > 10, "test should exercise many elements");
    }

    #[test]
    fn raising_threshold_lowers_output_sum() {
        // Monotonicity property the optimizer relies on: a higher threshold
        // prunes more, so the summed soft-threshold output decreases.
        let cfg = SoftThresholdConfig::default();
        let scores = rng::uniform_matrix(&mut rng::seeded(19), 10, 10, -1.0, 1.0);
        let low = cfg.apply_matrix(&scores, -0.5).sum();
        let high = cfg.apply_matrix(&scores, 0.5).sum();
        assert!(high < low);
    }

    #[test]
    #[should_panic(expected = "1x1 scalar")]
    fn non_scalar_threshold_panics() {
        let tape = Tape::new();
        let s = tape.leaf(Matrix::zeros(2, 2));
        let th = tape.leaf(Matrix::zeros(1, 2));
        let _ = soft_threshold_op(&tape, s, th, SoftThresholdConfig::default());
    }
}
