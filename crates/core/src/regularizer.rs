//! The differentiable surrogate L0 regularizer (Equation 8).
//!
//! A plain L0 penalty would count the scores that survive pruning, but the
//! indicator function has no useful gradient. The paper replaces the
//! indicator with a sharp sigmoid: a score that was soft-thresholded sits
//! near `-c` when pruned and near its original (much larger) value when kept,
//! so `sigmoid(k (score + c - alpha))` is ~0 for pruned scores and ~1 for
//! surviving ones. Summing that quantity approximates the number of
//! survivors, and its gradient pushes borderline scores toward the pruned
//! region — the sparsity pressure that counteracts the task loss.
//!
//! The paper's constants are `k = 100` and `alpha = 1`.

use crate::soft_threshold::SoftThresholdConfig;
use leopard_autodiff::{Tape, Var};
use leopard_tensor::{ops, Matrix};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the surrogate L0 regularizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct L0Config {
    /// Sigmoid sharpness `k` (paper: 100).
    pub sharpness: f32,
    /// Offset `alpha` (paper: 1).
    pub alpha: f32,
    /// Clip magnitude `c` shared with the soft threshold (paper: 1000).
    pub clip: f32,
    /// Balancing factor `lambda` multiplying the regularizer in the loss.
    pub lambda: f32,
    /// When true the count is divided by the number of scores, making
    /// `lambda` independent of sequence length. The paper's Equation 7 uses
    /// the raw count; normalization is this reproduction's default because it
    /// keeps one `lambda` usable across the 43 tasks' very different
    /// sequence lengths.
    pub normalize: bool,
}

impl Default for L0Config {
    fn default() -> Self {
        Self {
            sharpness: 100.0,
            alpha: 1.0,
            clip: 1000.0,
            lambda: 0.05,
            normalize: true,
        }
    }
}

impl L0Config {
    /// Creates a configuration consistent with a soft-threshold configuration
    /// (shares its clip constant).
    pub fn for_soft_threshold(soft: SoftThresholdConfig, lambda: f32) -> Self {
        Self {
            clip: soft.clip,
            lambda,
            ..Self::default()
        }
    }

    /// Surrogate indicator for a single soft-thresholded score.
    pub fn indicator(&self, soft_score: f32) -> f32 {
        ops::sigmoid(self.sharpness * (soft_score + self.clip - self.alpha))
    }

    /// Derivative of the surrogate indicator with respect to the score.
    pub fn indicator_derivative(&self, soft_score: f32) -> f32 {
        let y = self.indicator(soft_score);
        self.sharpness * y * (1.0 - y)
    }

    /// Approximate count of surviving scores in a soft-thresholded matrix
    /// (optionally normalized to a fraction).
    pub fn surrogate_count(&self, soft_scores: &Matrix) -> f32 {
        let raw: f32 = soft_scores.iter().map(|&v| self.indicator(v)).sum();
        if self.normalize && !soft_scores.is_empty() {
            raw / soft_scores.len() as f32
        } else {
            raw
        }
    }

    /// Exact count of surviving scores (those strictly above `-c`), i.e. the
    /// quantity Equation 8a defines and the surrogate approximates.
    pub fn exact_count(&self, soft_scores: &Matrix) -> f32 {
        let raw = soft_scores
            .iter()
            .filter(|&&v| v > -self.clip + self.alpha)
            .count() as f32;
        if self.normalize && !soft_scores.is_empty() {
            raw / soft_scores.len() as f32
        } else {
            raw
        }
    }
}

/// Records the surrogate L0 term on the tape: the (optionally normalized)
/// approximate survivor count of `soft_scores`, **already multiplied by
/// `lambda`**, as a `1 x 1` node ready to be added to the task loss.
pub fn l0_regularizer_op(tape: &Tape, soft_scores: Var, config: L0Config) -> Var {
    let values = tape.value(soft_scores);
    let count = config.surrogate_count(&values);
    let output = Matrix::filled(1, 1, config.lambda * count);
    let n = values.len() as f32;
    let cfg = config;
    tape.custom_unary(soft_scores, output, move |upstream: &Matrix| {
        let scale = if cfg.normalize && n > 0.0 {
            cfg.lambda / n
        } else {
            cfg.lambda
        };
        values.map(|v| upstream[(0, 0)] * scale * cfg.indicator_derivative(v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soft_threshold::soft_threshold_op;
    use leopard_autodiff::gradcheck::check_unary;
    use leopard_tensor::rng;

    #[test]
    fn defaults_match_paper_constants() {
        let cfg = L0Config::default();
        assert_eq!(cfg.sharpness, 100.0);
        assert_eq!(cfg.alpha, 1.0);
        assert_eq!(cfg.clip, 1000.0);
    }

    #[test]
    fn indicator_separates_pruned_from_kept() {
        let cfg = L0Config::default();
        // A pruned score sits at -clip.
        assert!(cfg.indicator(-cfg.clip) < 1e-3);
        // A kept score is near its original value (order 1).
        assert!(cfg.indicator(0.5) > 0.999);
        assert!(cfg.indicator(5.0) > 0.999);
    }

    #[test]
    fn surrogate_count_tracks_exact_count() {
        let cfg = L0Config {
            normalize: false,
            ..L0Config::default()
        };
        // Construct a matrix of clearly pruned (-1000) and clearly kept values.
        let soft = Matrix::from_rows(&[
            vec![-1000.0, 0.4, 2.0, -1000.0],
            vec![1.5, -1000.0, -1000.0, 0.9],
        ]);
        let approx = cfg.surrogate_count(&soft);
        let exact = cfg.exact_count(&soft);
        assert!((approx - exact).abs() < 0.05, "{approx} vs {exact}");
        assert_eq!(exact, 4.0);
    }

    #[test]
    fn normalization_divides_by_element_count() {
        let cfg = L0Config::default();
        let soft = Matrix::from_rows(&[vec![-1000.0, 1.0]]);
        let frac = cfg.surrogate_count(&soft);
        assert!((frac - 0.5).abs() < 0.05);
    }

    #[test]
    fn regularizer_gradient_matches_finite_difference() {
        // Use gentler sharpness so the sigmoid is not numerically saturated
        // at the probe points.
        let cfg = L0Config {
            sharpness: 3.0,
            alpha: 0.0,
            clip: 1.0,
            lambda: 1.0,
            normalize: true,
        };
        let scores = rng::uniform_matrix(&mut rng::seeded(5), 3, 3, -1.0, 1.0);
        let err = check_unary(&scores, 1e-3, move |tape, s| {
            l0_regularizer_op(tape, s, cfg)
        });
        assert!(err < 1e-2, "regularizer gradient error {err}");
    }

    #[test]
    fn lambda_scales_the_term() {
        let tape = Tape::new();
        let s = tape.leaf(Matrix::from_rows(&[vec![0.5, -1000.0]]));
        let small = l0_regularizer_op(
            &tape,
            s,
            L0Config {
                lambda: 0.1,
                ..L0Config::default()
            },
        );
        let large = l0_regularizer_op(
            &tape,
            s,
            L0Config {
                lambda: 1.0,
                ..L0Config::default()
            },
        );
        let ratio = tape.value(large)[(0, 0)] / tape.value(small)[(0, 0)];
        assert!((ratio - 10.0).abs() < 1e-3);
    }

    #[test]
    fn combined_with_soft_threshold_pushes_threshold_up() {
        // The full pipeline the fine-tuner uses: raw scores -> soft threshold
        // -> L0 term. The gradient of the L0 term with respect to the
        // threshold must be negative (raising Th lowers the survivor count),
        // so gradient descent on the regularized loss raises the threshold.
        let soft_cfg = SoftThresholdConfig::new(10.0, 1000.0);
        let l0_cfg = L0Config::for_soft_threshold(soft_cfg, 1.0);
        let tape = Tape::new();
        let scores = tape.constant(rng::uniform_matrix(&mut rng::seeded(23), 6, 6, -1.0, 1.0));
        let th = tape.leaf(Matrix::filled(1, 1, 0.0));
        let soft = soft_threshold_op(&tape, scores, th, soft_cfg);
        let reg = l0_regularizer_op(&tape, soft, l0_cfg);
        tape.backward(reg);
        let grad_th = tape.grad(th)[(0, 0)];
        assert!(
            grad_th < 0.0,
            "dL0/dTh should be negative so SGD raises Th, got {grad_th}"
        );
    }
}
