//! Score hooks implementing the learned pruning.
//!
//! Two hooks correspond to the two phases of the paper's pipeline:
//!
//! * [`SoftThresholdHook`] implements the transformer crate's
//!   [`TrainScoreHook`]: during pruning-aware fine-tuning every attention
//!   layer's scaled scores pass through the differentiable soft threshold and
//!   accumulate a surrogate L0 term. The hook also owns the per-layer
//!   threshold tape leaves for the current forward pass so the fine-tuner can
//!   read their gradients.
//! * [`HardThresholdHook`] implements [`InferenceScoreHook`]: at inference
//!   (and when driving the accelerator simulator) scores strictly below the
//!   learned threshold are clipped to a large negative value so the softmax
//!   assigns them ~zero probability — the "replace by −∞" of the paper with a
//!   finite stand-in.

use crate::regularizer::{l0_regularizer_op, L0Config};
use crate::soft_threshold::{soft_threshold_op, SoftThresholdConfig};
use crate::stats::PruningStats;
use crate::thresholds::LayerThresholds;
use leopard_autodiff::{Tape, Var};
use leopard_tensor::Matrix;
use leopard_transformer::attention::PRUNED_SCORE;
use leopard_transformer::hooks::{InferenceScoreHook, TrainScoreHook};
use std::cell::RefCell;

/// Differentiable soft-threshold hook used while fine-tuning.
///
/// The hook is created once per forward pass (one tape). It lazily registers
/// one `1 x 1` threshold leaf per layer the first time that layer's scores
/// arrive and reuses the leaf for the layer's remaining heads, so gradients
/// from every head accumulate into the same per-layer threshold — exactly the
/// paper's "per-layer" granularity.
pub struct SoftThresholdHook<'a> {
    thresholds: &'a LayerThresholds,
    soft_config: SoftThresholdConfig,
    l0_config: L0Config,
    state: RefCell<HookState>,
}

#[derive(Default)]
struct HookState {
    /// Threshold leaf per layer, registered on first use within this pass.
    threshold_vars: Vec<Option<Var>>,
    /// Accumulated λ-scaled L0 terms (one per attention head processed).
    regularizer_terms: Vec<Var>,
    /// Sparsity bookkeeping from the soft-threshold outputs.
    stats: PruningStats,
}

impl<'a> SoftThresholdHook<'a> {
    /// Creates a hook for one forward/backward pass.
    pub fn new(
        thresholds: &'a LayerThresholds,
        soft_config: SoftThresholdConfig,
        l0_config: L0Config,
    ) -> Self {
        Self {
            thresholds,
            soft_config,
            l0_config,
            state: RefCell::new(HookState {
                threshold_vars: vec![None; thresholds.layers()],
                ..HookState::default()
            }),
        }
    }

    /// The per-layer threshold leaves registered during the forward pass.
    /// Layers whose scores never reached the hook have no entry.
    pub fn threshold_vars(&self) -> Vec<(usize, Var)> {
        self.state
            .borrow()
            .threshold_vars
            .iter()
            .enumerate()
            .filter_map(|(layer, var)| var.map(|v| (layer, v)))
            .collect()
    }

    /// Sum of all accumulated λ-scaled surrogate L0 terms as a single scalar
    /// node, or `None` if no scores passed through the hook.
    pub fn regularizer_total(&self, tape: &Tape) -> Option<Var> {
        let state = self.state.borrow();
        let mut iter = state.regularizer_terms.iter().copied();
        let first = iter.next()?;
        Some(iter.fold(first, |acc, term| tape.add(acc, term)))
    }

    /// Pruning statistics accumulated from the soft-threshold outputs during
    /// this pass (a score counts as pruned when its soft output is below
    /// `-clip + alpha`, mirroring Equation 8a).
    pub fn stats(&self) -> PruningStats {
        self.state.borrow().stats.clone()
    }
}

impl TrainScoreHook for SoftThresholdHook<'_> {
    fn on_scores(&self, tape: &Tape, scores: Var, layer: usize, _head: usize) -> Var {
        assert!(
            layer < self.thresholds.layers(),
            "layer {layer} has no learned threshold (model deeper than LayerThresholds)"
        );
        // Register (or reuse) the layer's threshold leaf.
        let th_var = {
            let mut state = self.state.borrow_mut();
            match state.threshold_vars[layer] {
                Some(v) => v,
                None => {
                    let v = tape.leaf(self.thresholds.as_matrix(layer));
                    state.threshold_vars[layer] = Some(v);
                    v
                }
            }
        };

        let soft = soft_threshold_op(tape, scores, th_var, self.soft_config);
        let reg = l0_regularizer_op(tape, soft, self.l0_config);

        // Bookkeeping: how many scores ended up in the pruned region.
        let soft_values = tape.value(soft);
        let kept_boundary = -self.l0_config.clip + self.l0_config.alpha;
        let pruned = soft_values.iter().filter(|&&v| v <= kept_boundary).count();
        {
            let mut state = self.state.borrow_mut();
            state.regularizer_terms.push(reg);
            state.stats.record_layer(layer, soft_values.len(), pruned);
        }
        soft
    }
}

/// Hard-threshold hook used at inference and simulation time.
///
/// Scores strictly below the layer's learned threshold are replaced by
/// [`PRUNED_SCORE`]; the rest are untouched. The hook also accumulates
/// pruning statistics so a single evaluation pass yields the data for
/// Figure 7.
#[derive(Debug, Clone)]
pub struct HardThresholdHook {
    thresholds: LayerThresholds,
    stats: RefCell<PruningStats>,
}

impl HardThresholdHook {
    /// Creates a hook from learned thresholds.
    pub fn new(thresholds: LayerThresholds) -> Self {
        Self {
            thresholds,
            stats: RefCell::new(PruningStats::new()),
        }
    }

    /// The thresholds driving this hook.
    pub fn thresholds(&self) -> &LayerThresholds {
        &self.thresholds
    }

    /// Pruning statistics accumulated so far.
    pub fn stats(&self) -> PruningStats {
        self.stats.borrow().clone()
    }

    /// Clears the accumulated statistics.
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = PruningStats::new();
    }
}

impl InferenceScoreHook for HardThresholdHook {
    fn on_scores(&self, scores: &mut Matrix, layer: usize, _head: usize) {
        assert!(
            layer < self.thresholds.layers(),
            "layer {layer} has no learned threshold (model deeper than LayerThresholds)"
        );
        let th = self.thresholds.get(layer);
        let mut pruned = 0usize;
        for v in scores.iter_mut() {
            if *v < th {
                *v = PRUNED_SCORE;
                pruned += 1;
            }
        }
        self.stats
            .borrow_mut()
            .record_layer(layer, scores.len(), pruned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_tensor::rng;
    use leopard_transformer::attention::attention_inference;
    use leopard_transformer::hooks::IdentityHook;

    #[test]
    fn soft_hook_registers_one_threshold_per_layer() {
        let thresholds = LayerThresholds::zeros(3);
        let hook = SoftThresholdHook::new(
            &thresholds,
            SoftThresholdConfig::default(),
            L0Config::default(),
        );
        let tape = Tape::new();
        let scores0 = tape.constant(Matrix::filled(4, 4, 0.5));
        let scores1 = tape.constant(Matrix::filled(4, 4, 0.5));
        // Two heads of layer 0 and one head of layer 2.
        let _ = hook.on_scores(&tape, scores0, 0, 0);
        let _ = hook.on_scores(&tape, scores0, 0, 1);
        let _ = hook.on_scores(&tape, scores1, 2, 0);
        let vars = hook.threshold_vars();
        assert_eq!(vars.len(), 2, "layers 0 and 2 registered");
        assert_eq!(vars[0].0, 0);
        assert_eq!(vars[1].0, 2);
    }

    #[test]
    fn soft_hook_threshold_gradient_includes_all_heads() {
        let thresholds = LayerThresholds::zeros(1);
        let soft_cfg = SoftThresholdConfig::new(4.0, 10.0);
        let l0_cfg = L0Config {
            sharpness: 3.0,
            alpha: 0.0,
            clip: 10.0,
            lambda: 1.0,
            normalize: true,
        };
        let run = |heads: usize| -> f32 {
            let hook = SoftThresholdHook::new(&thresholds, soft_cfg, l0_cfg);
            let tape = Tape::new();
            let mut r = rng::seeded(3);
            let mut loss_terms = Vec::new();
            for h in 0..heads {
                let scores = tape.constant(rng::uniform_matrix(&mut r, 4, 4, -1.0, 1.0));
                let soft = hook.on_scores(&tape, scores, 0, h);
                loss_terms.push(tape.sum(soft));
            }
            let mut loss = loss_terms[0];
            for &t in &loss_terms[1..] {
                loss = tape.add(loss, t);
            }
            if let Some(reg) = hook.regularizer_total(&tape) {
                loss = tape.add(loss, reg);
            }
            tape.backward(loss);
            let (_, th_var) = hook.threshold_vars()[0];
            tape.grad(th_var)[(0, 0)]
        };
        let one_head = run(1).abs();
        let two_heads = run(2).abs();
        assert!(
            two_heads > one_head * 1.2,
            "more heads should contribute more threshold gradient: {one_head} vs {two_heads}"
        );
    }

    #[test]
    fn soft_hook_accumulates_regularizer_and_stats() {
        let thresholds = LayerThresholds::from_values(vec![0.3]);
        let hook = SoftThresholdHook::new(
            &thresholds,
            SoftThresholdConfig::default(),
            L0Config::default(),
        );
        let tape = Tape::new();
        // Half the scores are clearly below the threshold.
        let scores = tape.constant(Matrix::from_rows(&[vec![1.0, -1.0], vec![0.9, -2.0]]));
        let _ = hook.on_scores(&tape, scores, 0, 0);
        let reg = hook.regularizer_total(&tape).expect("one term accumulated");
        // Normalized survivor fraction ~0.5 scaled by default lambda.
        let value = tape.value(reg)[(0, 0)];
        assert!((value - 0.5 * L0Config::default().lambda).abs() < 0.05);
        let stats = hook.stats();
        assert_eq!(stats.total_scores(), 4);
        assert_eq!(stats.pruned_scores(), 2);
    }

    #[test]
    fn hard_hook_prunes_below_threshold_only() {
        let hook = HardThresholdHook::new(LayerThresholds::from_values(vec![0.0, 0.5]));
        let mut layer0 = Matrix::from_rows(&[vec![0.2, -0.3, 0.0]]);
        hook.on_scores(&mut layer0, 0, 0);
        assert_eq!(layer0[(0, 0)], 0.2);
        assert_eq!(layer0[(0, 1)], PRUNED_SCORE);
        assert_eq!(layer0[(0, 2)], 0.0, "scores equal to Th survive");

        let mut layer1 = Matrix::from_rows(&[vec![0.2, 0.6]]);
        hook.on_scores(&mut layer1, 1, 0);
        assert_eq!(layer1[(0, 0)], PRUNED_SCORE);
        assert_eq!(layer1[(0, 1)], 0.6);

        let stats = hook.stats();
        assert_eq!(stats.total_scores(), 5);
        assert_eq!(stats.pruned_scores(), 2);
        assert_eq!(stats.layer_pruning_rate(0), Some(1.0 / 3.0));
        hook.reset_stats();
        assert_eq!(hook.stats().total_scores(), 0);
    }

    #[test]
    fn hard_hook_with_zero_threshold_prunes_negative_scores_in_attention() {
        let hook = HardThresholdHook::new(LayerThresholds::zeros(1));
        let mut r = rng::seeded(9);
        let q = rng::normal_matrix(&mut r, 8, 16, 0.0, 1.0);
        let k = rng::normal_matrix(&mut r, 8, 16, 0.0, 1.0);
        let v = rng::normal_matrix(&mut r, 8, 16, 0.0, 1.0);
        let pruned = attention_inference(&q, &k, &v, &hook, 0, 0);
        let dense = attention_inference(&q, &k, &v, &IdentityHook, 0, 0);
        assert!(pruned.pruned_count > 0);
        // With a threshold at zero roughly half of random scores get pruned,
        // yet the output should stay correlated with the dense one because
        // high-probability entries survive.
        let diff = (&pruned.output - &dense.output).frobenius_norm();
        let scale = dense.output.frobenius_norm();
        assert!(
            diff / scale < 0.8,
            "pruned output unexpectedly far from dense"
        );
    }

    #[test]
    #[should_panic(expected = "no learned threshold")]
    fn out_of_range_layer_panics() {
        let hook = HardThresholdHook::new(LayerThresholds::zeros(1));
        let mut scores = Matrix::zeros(2, 2);
        hook.on_scores(&mut scores, 5, 0);
    }
}
