//! Pruning-rate accounting.
//!
//! Figure 7 of the paper reports, per task, the percentage of `Q·Kᵀ` scores
//! pruned away by the learned thresholds; Figure 8 additionally tracks how
//! the pruning decisions accumulate as more bits of the bit-serial
//! computation are processed. [`PruningStats`] is the shared counter both the
//! software evaluation and the accelerator simulator update.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters of total and pruned scores, overall and per attention layer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruningStats {
    total: u64,
    pruned: u64,
    per_layer: BTreeMap<usize, (u64, u64)>,
}

impl PruningStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome for one score matrix of `layer`: `total` scores of
    /// which `pruned` were pruned.
    ///
    /// # Panics
    ///
    /// Panics if `pruned > total`.
    pub fn record_layer(&mut self, layer: usize, total: usize, pruned: usize) {
        assert!(pruned <= total, "cannot prune more scores than exist");
        self.total += total as u64;
        self.pruned += pruned as u64;
        let entry = self.per_layer.entry(layer).or_insert((0, 0));
        entry.0 += total as u64;
        entry.1 += pruned as u64;
    }

    /// Total number of scores observed.
    pub fn total_scores(&self) -> u64 {
        self.total
    }

    /// Number of scores pruned.
    pub fn pruned_scores(&self) -> u64 {
        self.pruned
    }

    /// Number of scores that survived pruning.
    pub fn kept_scores(&self) -> u64 {
        self.total - self.pruned
    }

    /// Overall pruning rate in `[0, 1]` (0 when nothing was observed).
    pub fn pruning_rate(&self) -> f32 {
        if self.total == 0 {
            0.0
        } else {
            self.pruned as f32 / self.total as f32
        }
    }

    /// Pruning rate of a specific layer, if that layer was observed.
    pub fn layer_pruning_rate(&self, layer: usize) -> Option<f32> {
        self.per_layer.get(&layer).map(|&(total, pruned)| {
            if total == 0 {
                0.0
            } else {
                pruned as f32 / total as f32
            }
        })
    }

    /// Layers observed so far, in ascending order.
    pub fn layers(&self) -> Vec<usize> {
        self.per_layer.keys().copied().collect()
    }

    /// Merges another set of statistics into this one.
    pub fn merge(&mut self, other: &PruningStats) {
        self.total += other.total;
        self.pruned += other.pruned;
        for (&layer, &(total, pruned)) in &other.per_layer {
            let entry = self.per_layer.entry(layer).or_insert((0, 0));
            entry.0 += total;
            entry.1 += pruned;
        }
    }
}

impl std::fmt::Display for PruningStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pruned {}/{} scores ({:.1}%)",
            self.pruned,
            self.total,
            self.pruning_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_zero() {
        let s = PruningStats::new();
        assert_eq!(s.total_scores(), 0);
        assert_eq!(s.pruning_rate(), 0.0);
        assert!(s.layers().is_empty());
        assert_eq!(s.layer_pruning_rate(0), None);
    }

    #[test]
    fn record_and_rates() {
        let mut s = PruningStats::new();
        s.record_layer(0, 100, 80);
        s.record_layer(1, 100, 60);
        assert_eq!(s.total_scores(), 200);
        assert_eq!(s.pruned_scores(), 140);
        assert_eq!(s.kept_scores(), 60);
        assert!((s.pruning_rate() - 0.7).abs() < 1e-6);
        assert_eq!(s.layer_pruning_rate(0), Some(0.8));
        assert_eq!(s.layer_pruning_rate(1), Some(0.6));
        assert_eq!(s.layers(), vec![0, 1]);
    }

    #[test]
    fn merge_accumulates_per_layer() {
        let mut a = PruningStats::new();
        a.record_layer(0, 10, 5);
        let mut b = PruningStats::new();
        b.record_layer(0, 10, 10);
        b.record_layer(2, 4, 1);
        a.merge(&b);
        assert_eq!(a.total_scores(), 24);
        assert_eq!(a.layer_pruning_rate(0), Some(0.75));
        assert_eq!(a.layers(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot prune more")]
    fn overcounting_panics() {
        let mut s = PruningStats::new();
        s.record_layer(0, 5, 6);
    }

    #[test]
    fn display_is_informative() {
        let mut s = PruningStats::new();
        s.record_layer(0, 4, 3);
        let text = s.to_string();
        assert!(text.contains("3/4"));
        assert!(text.contains("75.0%"));
    }
}
