//! Per-layer learned threshold container.
//!
//! The paper learns one pruning threshold per attention layer (Section 3.1):
//! "such a threshold needs to be defined on a per-layer basis to maintain
//! model accuracy". This module holds those values, initialised to zero as in
//! the paper, and moves them between the training hook (where they are tape
//! leaves with gradients) and the inference hook / accelerator (where they
//! are plain numbers).

use leopard_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// The learned per-layer pruning thresholds of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerThresholds {
    values: Vec<f32>,
}

impl LayerThresholds {
    /// Creates thresholds for `layers` attention layers, all initialised to
    /// zero (the paper's initialisation).
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn zeros(layers: usize) -> Self {
        assert!(layers > 0, "a model has at least one attention layer");
        Self {
            values: vec![0.0; layers],
        }
    }

    /// Creates thresholds from explicit per-layer values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: Vec<f32>) -> Self {
        assert!(
            !values.is_empty(),
            "a model has at least one attention layer"
        );
        Self { values }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.values.len()
    }

    /// Threshold of `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn get(&self, layer: usize) -> f32 {
        self.values[layer]
    }

    /// Sets the threshold of `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn set(&mut self, layer: usize, value: f32) {
        self.values[layer] = value;
    }

    /// All thresholds as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Mean threshold across layers (the scalar Figure 2 plots).
    pub fn mean(&self) -> f32 {
        self.values.iter().sum::<f32>() / self.values.len() as f32
    }

    /// The threshold of `layer` as a `1 x 1` matrix, ready to become a tape
    /// leaf.
    pub fn as_matrix(&self, layer: usize) -> Matrix {
        Matrix::filled(1, 1, self.get(layer))
    }

    /// Writes back a `1 x 1` matrix (typically after an optimizer step).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or `m` is not `1 x 1`.
    pub fn update_from_matrix(&mut self, layer: usize, m: &Matrix) {
        assert_eq!(m.shape(), (1, 1), "threshold matrices are 1x1");
        self.set(layer, m[(0, 0)]);
    }

    /// Iterates over `(layer, threshold)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f32)> + '_ {
        self.values.iter().copied().enumerate()
    }
}

impl From<Vec<f32>> for LayerThresholds {
    fn from(values: Vec<f32>) -> Self {
        Self::from_values(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_initialisation_matches_paper() {
        let th = LayerThresholds::zeros(24);
        assert_eq!(th.layers(), 24);
        assert!(th.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(th.mean(), 0.0);
    }

    #[test]
    fn set_get_and_mean() {
        let mut th = LayerThresholds::zeros(4);
        th.set(1, 0.4);
        th.set(3, 0.8);
        assert_eq!(th.get(1), 0.4);
        assert_eq!(th.get(0), 0.0);
        assert!((th.mean() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn matrix_round_trip() {
        let mut th = LayerThresholds::from_values(vec![0.1, 0.2]);
        let m = th.as_matrix(1);
        assert_eq!(m[(0, 0)], 0.2);
        th.update_from_matrix(0, &Matrix::filled(1, 1, 0.55));
        assert_eq!(th.get(0), 0.55);
    }

    #[test]
    fn iter_pairs() {
        let th = LayerThresholds::from_values(vec![0.1, 0.2, 0.3]);
        let pairs: Vec<(usize, f32)> = th.iter().collect();
        assert_eq!(pairs, vec![(0, 0.1), (1, 0.2), (2, 0.3)]);
    }

    #[test]
    #[should_panic(expected = "at least one attention layer")]
    fn zero_layers_panics() {
        let _ = LayerThresholds::zeros(0);
    }

    #[test]
    fn from_vec_conversion() {
        let th: LayerThresholds = vec![0.5, 0.6].into();
        assert_eq!(th.layers(), 2);
    }
}
