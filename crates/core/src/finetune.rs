//! Pruning-aware fine-tuning (Section 3.1 of the paper).
//!
//! The fine-tuner jointly optimizes the model weights and the per-layer
//! pruning thresholds. Each training sample's loss is the task cross-entropy
//! plus the λ-scaled surrogate L0 term accumulated by the
//! [`SoftThresholdHook`]; one `backward` pass yields gradients for both the
//! weights and the thresholds, which are then updated by two Adam instances
//! with different learning rates (the paper uses 1e-2 for the thresholds and
//! 5e-6 for the weights because threshold learning converges more slowly).
//!
//! The per-epoch records (`sparsity`, mean threshold, normalized loss,
//! evaluation accuracy) are exactly the series plotted in Figure 2; the
//! before/after accuracies feed Figure 6; the final hard-threshold pruning
//! rates feed Figure 7.

use crate::hooks::{HardThresholdHook, SoftThresholdHook};
use crate::regularizer::L0Config;
use crate::soft_threshold::SoftThresholdConfig;
use crate::stats::PruningStats;
use crate::thresholds::LayerThresholds;
use leopard_autodiff::optim::Adam;
use leopard_autodiff::Tape;
use leopard_tensor::{ops, Matrix};
use leopard_transformer::data::Dataset;
use leopard_transformer::hooks::IdentityHook;
use leopard_transformer::TransformerClassifier;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the pruning-aware fine-tuning pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FinetuneConfig {
    /// Number of fine-tuning epochs (the paper runs one to five).
    pub epochs: usize,
    /// Learning rate for the model weights (paper: 5e-6 at full scale; the
    /// synthetic models train from a weaker starting point so the default is
    /// larger).
    pub weight_lr: f32,
    /// Learning rate for the thresholds (paper: 1e-2).
    pub threshold_lr: f32,
    /// Soft-threshold parameters (paper: s = 10, c = 1000).
    pub soft_threshold: SoftThresholdConfig,
    /// Surrogate L0 parameters including the balancing factor λ.
    pub l0: L0Config,
    /// Whether thresholds may become negative. The paper's formulation does
    /// not restrict them; keeping them unconstrained is the default.
    pub clamp_thresholds_at_zero: bool,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            weight_lr: 2e-3,
            threshold_lr: 1e-2,
            soft_threshold: SoftThresholdConfig::default(),
            l0: L0Config::default(),
            clamp_thresholds_at_zero: false,
        }
    }
}

/// Per-epoch measurements recorded during fine-tuning (the Figure 2 series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index, starting at 1.
    pub epoch: usize,
    /// Mean training loss (task + regularizer) over the epoch.
    pub train_loss: f32,
    /// Training loss normalized to the first epoch's value.
    pub normalized_loss: f32,
    /// Attention sparsity (fraction of scores in the pruned region) measured
    /// from the soft-threshold outputs during training.
    pub sparsity: f32,
    /// Mean learned threshold across layers at the end of the epoch.
    pub mean_threshold: f32,
    /// Evaluation accuracy with hard-threshold pruning applied.
    pub eval_accuracy: f32,
}

/// Outcome of a fine-tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinetuneReport {
    /// Accuracy of the model before any pruning-aware fine-tuning, evaluated
    /// without pruning (the "baseline accuracy" of Figure 6).
    pub baseline_accuracy: f32,
    /// Accuracy after fine-tuning with hard-threshold pruning applied (the
    /// "accuracy with LeOPArd runtime pruning" of Figure 6).
    pub pruned_accuracy: f32,
    /// Final learned thresholds.
    pub thresholds: LayerThresholds,
    /// Final pruning statistics measured with the hard threshold on the
    /// evaluation split (the Figure 7 quantity).
    pub pruning_stats: PruningStats,
    /// Per-epoch training dynamics (the Figure 2 series).
    pub epochs: Vec<EpochRecord>,
}

impl FinetuneReport {
    /// Accuracy change caused by pruning-aware fine-tuning, in percentage
    /// points (positive means degradation, matching the paper's convention).
    pub fn accuracy_degradation(&self) -> f32 {
        (self.baseline_accuracy - self.pruned_accuracy) * 100.0
    }

    /// Overall pruning rate on the evaluation split.
    pub fn pruning_rate(&self) -> f32 {
        self.pruning_stats.pruning_rate()
    }
}

/// Joint weight + threshold fine-tuner.
#[derive(Debug)]
pub struct Finetuner {
    config: FinetuneConfig,
}

impl Finetuner {
    /// Creates a fine-tuner with the given configuration.
    pub fn new(config: FinetuneConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FinetuneConfig {
        &self.config
    }

    /// Runs pruning-aware fine-tuning of `model` on `train`, evaluating on
    /// `eval` after every epoch, and returns the report plus the updated
    /// model (modified in place).
    ///
    /// # Panics
    ///
    /// Panics if either dataset is empty.
    pub fn run(
        &self,
        model: &mut TransformerClassifier,
        train: &Dataset,
        eval: &Dataset,
    ) -> FinetuneReport {
        assert!(!train.is_empty(), "training split must not be empty");
        assert!(!eval.is_empty(), "evaluation split must not be empty");

        let layers = model.config().layers;
        let mut thresholds = LayerThresholds::zeros(layers);

        // Baseline accuracy: the un-fine-tuned model without pruning.
        let baseline_accuracy = evaluate_accuracy(model, eval, None);

        let mut weight_opt = Adam::new(self.config.weight_lr);
        let mut threshold_opt = Adam::new(self.config.threshold_lr);

        let mut epochs = Vec::with_capacity(self.config.epochs);
        let mut first_epoch_loss: Option<f32> = None;

        for epoch in 1..=self.config.epochs {
            let mut epoch_loss = 0.0f32;
            let mut epoch_stats = PruningStats::new();

            for (x, label) in train.iter() {
                let tape = Tape::new();
                let hook =
                    SoftThresholdHook::new(&thresholds, self.config.soft_threshold, self.config.l0);
                let (logits, param_nodes) = model.forward_train(&tape, x, &hook);
                let task_loss = tape.cross_entropy(logits, &[label]);
                let loss = match hook.regularizer_total(&tape) {
                    Some(reg) => tape.add(task_loss, reg),
                    None => task_loss,
                };
                tape.backward(loss);
                epoch_loss += tape.value(loss)[(0, 0)];
                epoch_stats.merge(&hook.stats());

                // Weight update.
                let grads: Vec<Matrix> = param_nodes.iter().map(|&p| tape.grad(p)).collect();
                let mut params = model.params_mut();
                let grad_refs: Vec<&Matrix> = grads.iter().collect();
                weight_opt.step(&mut params, &grad_refs);

                // Threshold update (one 1x1 parameter per layer touched).
                let th_vars = hook.threshold_vars();
                if !th_vars.is_empty() {
                    let th_grads: Vec<Matrix> =
                        th_vars.iter().map(|&(_, v)| tape.grad(v)).collect();
                    let mut th_params: Vec<Matrix> = th_vars
                        .iter()
                        .map(|&(layer, _)| thresholds.as_matrix(layer))
                        .collect();
                    {
                        let mut refs: Vec<&mut Matrix> = th_params.iter_mut().collect();
                        let grad_refs: Vec<&Matrix> = th_grads.iter().collect();
                        threshold_opt.step(&mut refs, &grad_refs);
                    }
                    for ((layer, _), updated) in th_vars.iter().zip(th_params.iter()) {
                        let mut value = updated[(0, 0)];
                        if self.config.clamp_thresholds_at_zero {
                            value = value.max(0.0);
                        }
                        thresholds.set(*layer, value);
                    }
                }
            }

            let mean_loss = epoch_loss / train.len() as f32;
            let first = *first_epoch_loss.get_or_insert(mean_loss);
            let eval_accuracy = evaluate_accuracy(model, eval, Some(&thresholds));
            epochs.push(EpochRecord {
                epoch,
                train_loss: mean_loss,
                normalized_loss: if first.abs() > f32::EPSILON {
                    mean_loss / first
                } else {
                    1.0
                },
                sparsity: epoch_stats.pruning_rate(),
                mean_threshold: thresholds.mean(),
                eval_accuracy,
            });
        }

        // Final evaluation with hard-threshold pruning and statistics.
        let hook = HardThresholdHook::new(thresholds.clone());
        let pruned_accuracy = evaluate_accuracy_with_hook(model, eval, &hook);
        let pruning_stats = hook.stats();

        FinetuneReport {
            baseline_accuracy,
            pruned_accuracy,
            thresholds,
            pruning_stats,
            epochs,
        }
    }
}

/// Evaluates classification accuracy. When `thresholds` is provided the
/// evaluation applies hard-threshold pruning, otherwise the dense model runs.
pub fn evaluate_accuracy(
    model: &TransformerClassifier,
    data: &Dataset,
    thresholds: Option<&LayerThresholds>,
) -> f32 {
    match thresholds {
        Some(th) => {
            let hook = HardThresholdHook::new(th.clone());
            evaluate_accuracy_with_hook(model, data, &hook)
        }
        None => {
            let mut logits_all = Vec::with_capacity(data.len());
            let mut labels = Vec::with_capacity(data.len());
            for (x, label) in data.iter() {
                let (logits, _) = model.forward_inference(x, &IdentityHook);
                logits_all.push(logits.row(0).to_vec());
                labels.push(label);
            }
            let logits = Matrix::from_rows(&logits_all);
            ops::accuracy(&logits, &labels)
        }
    }
}

/// Evaluates classification accuracy with an explicit hard-threshold hook so
/// the caller can also read the accumulated pruning statistics.
pub fn evaluate_accuracy_with_hook(
    model: &TransformerClassifier,
    data: &Dataset,
    hook: &HardThresholdHook,
) -> f32 {
    let mut logits_all = Vec::with_capacity(data.len());
    let mut labels = Vec::with_capacity(data.len());
    for (x, label) in data.iter() {
        let (logits, _) = model.forward_inference(x, hook);
        logits_all.push(logits.row(0).to_vec());
        labels.push(label);
    }
    let logits = Matrix::from_rows(&logits_all);
    ops::accuracy(&logits, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_transformer::config::{ModelConfig, ModelFamily};
    use leopard_transformer::data::{TaskGenerator, TaskSpec};

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            family: ModelFamily::BertBase,
            layers: 2,
            heads: 1,
            head_dim: 12,
            model_dim: 12,
            ffn_dim: 24,
            seq_len: 10,
        }
    }

    fn quick_finetune_config(epochs: usize) -> FinetuneConfig {
        FinetuneConfig {
            epochs,
            weight_lr: 3e-3,
            threshold_lr: 2e-2,
            l0: L0Config {
                lambda: 0.2,
                ..L0Config::default()
            },
            ..FinetuneConfig::default()
        }
    }

    fn make_task() -> (TransformerClassifier, Dataset, Dataset) {
        let cfg = tiny_config();
        let spec = TaskSpec {
            classes: 3,
            signal_tokens: 2,
            noise_std: 0.5,
            signal_strength: 2.5,
            seed: 77,
        };
        let gen = TaskGenerator::new(cfg, spec);
        let train = gen.generate(24, 1);
        let eval = gen.generate(24, 2);
        let model = TransformerClassifier::new(cfg, spec.classes, 123);
        (model, train, eval)
    }

    #[test]
    fn finetuning_learns_positive_thresholds_and_sparsity_grows() {
        let (mut model, train, eval) = make_task();
        let report = Finetuner::new(quick_finetune_config(3)).run(&mut model, &train, &eval);

        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.thresholds.layers(), 2);
        // The L0 pressure should push sparsity up relative to the first epoch.
        let first = report.epochs.first().unwrap().sparsity;
        let last = report.epochs.last().unwrap().sparsity;
        assert!(
            last >= first,
            "sparsity should not decrease: {first} -> {last}"
        );
        // The mean threshold should move away from the zero initialisation.
        assert!(report.epochs.last().unwrap().mean_threshold.abs() > 1e-4);
        // Pruning statistics were collected on the eval split.
        assert!(report.pruning_stats.total_scores() > 0);
        assert!(report.pruning_rate() > 0.0);
    }

    #[test]
    fn finetuning_keeps_accuracy_within_reasonable_band() {
        let (mut model, train, eval) = make_task();
        let report = Finetuner::new(quick_finetune_config(4)).run(&mut model, &train, &eval);
        // Fine-tuning starts from a random model, so pruned accuracy should
        // end up at least as good as the untrained baseline (the paper starts
        // from a converged checkpoint; our synthetic runs train and prune at
        // once, which only makes this check stricter).
        assert!(
            report.pruned_accuracy + 0.05 >= report.baseline_accuracy,
            "pruned accuracy {} fell well below baseline {}",
            report.pruned_accuracy,
            report.baseline_accuracy
        );
    }

    #[test]
    fn normalized_loss_starts_at_one_and_tends_down() {
        let (mut model, train, eval) = make_task();
        let report = Finetuner::new(quick_finetune_config(3)).run(&mut model, &train, &eval);
        assert!((report.epochs[0].normalized_loss - 1.0).abs() < 1e-6);
        assert!(
            report.epochs.last().unwrap().normalized_loss
                <= report.epochs[0].normalized_loss + 0.05
        );
    }

    #[test]
    fn clamping_keeps_thresholds_nonnegative() {
        let (mut model, train, eval) = make_task();
        let mut cfg = quick_finetune_config(2);
        cfg.clamp_thresholds_at_zero = true;
        let report = Finetuner::new(cfg).run(&mut model, &train, &eval);
        assert!(report.thresholds.as_slice().iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn accuracy_degradation_helper_uses_percentage_points() {
        let report = FinetuneReport {
            baseline_accuracy: 0.90,
            pruned_accuracy: 0.88,
            thresholds: LayerThresholds::zeros(1),
            pruning_stats: PruningStats::new(),
            epochs: Vec::new(),
        };
        assert!((report.accuracy_degradation() - 2.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "training split must not be empty")]
    fn empty_dataset_panics() {
        let (mut model, _, eval) = make_task();
        let empty = Dataset {
            samples: Vec::new(),
            spec: TaskSpec::default(),
        };
        let _ = Finetuner::new(quick_finetune_config(1)).run(&mut model, &empty, &eval);
    }
}
