//! Gradient-based learned runtime pruning for attention (the LeOPArd
//! algorithm, ISCA 2022).
//!
//! The paper's key algorithmic contribution is to treat the per-layer
//! attention-score pruning threshold as a *trainable parameter* and learn it
//! jointly with the model weights during a short fine-tuning pass. Two pieces
//! make the threshold learnable by back-propagation:
//!
//! 1. **Soft threshold** ([`soft_threshold`]) — the hard "clip everything
//!    below `Th` to −∞" operation is replaced by a `tanh`-based approximation
//!    that is differentiable in both the scores and the threshold
//!    (Equation 6 of the paper, with sharpness `s = 10` and clip magnitude
//!    `c = 1000`).
//! 2. **Surrogate L0 regularizer** ([`regularizer`]) — a sharp sigmoid counts
//!    (approximately) how many scores survive the threshold (Equation 8); its
//!    gradient pressures the optimizer towards higher sparsity while the task
//!    loss pressures it towards accuracy, and the balance is set by the
//!    factor `λ`.
//!
//! The remaining modules turn those two ideas into a usable pipeline:
//!
//! * [`thresholds`] — the per-layer threshold container shared by training
//!   and inference.
//! * [`hooks`] — implementations of the transformer crate's score hooks: the
//!   differentiable soft-threshold hook used while fine-tuning and the hard
//!   threshold hook used at inference/simulation time.
//! * [`finetune`] — the pruning-aware fine-tuning loop (joint Adam updates
//!   for weights and thresholds with separate learning rates), producing the
//!   epoch-by-epoch sparsity/threshold/loss curves of Figure 2.
//! * [`stats`] — pruning-rate accounting used by Figures 7 and 8 and by the
//!   accelerator simulator.
//!
//! # Example: prune a score matrix with a learned threshold
//!
//! ```
//! use leopard_core::{hooks::HardThresholdHook, thresholds::LayerThresholds};
//! use leopard_transformer::hooks::InferenceScoreHook;
//! use leopard_tensor::Matrix;
//!
//! let thresholds = LayerThresholds::from_values(vec![0.25]);
//! let hook = HardThresholdHook::new(thresholds);
//! let mut scores = Matrix::from_rows(&[vec![0.9, 0.1, -0.4, 0.6]]);
//! hook.on_scores(&mut scores, 0, 0);
//! // Scores below 0.25 are clipped to a large negative value; the rest
//! // are untouched.
//! assert_eq!(scores[(0, 0)], 0.9);
//! assert!(scores[(0, 1)] < -1.0e3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod finetune;
pub mod hooks;
pub mod regularizer;
pub mod soft_threshold;
pub mod stats;
pub mod thresholds;

pub use finetune::{EpochRecord, FinetuneConfig, FinetuneReport, Finetuner};
pub use hooks::{HardThresholdHook, SoftThresholdHook};
pub use soft_threshold::SoftThresholdConfig;
pub use stats::PruningStats;
pub use thresholds::LayerThresholds;
