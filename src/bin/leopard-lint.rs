//! The `leopard-lint` entry point (built by `cargo build --release` at the
//! workspace root alongside `leopard`). All logic lives in
//! `leopard_lint::cli` so it can be unit-tested; this binary only forwards
//! the arguments and the exit code.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(leopard::lint::cli::run(&args));
}
