//! The `leopard` CLI entry point (built by `cargo build --release` at the
//! workspace root). All logic lives in `leopard_runtime::cli` so it can be
//! unit-tested; this binary only forwards the arguments.

/// Restores the default SIGPIPE disposition so `leopard list | head` exits
/// quietly like other Unix CLI tools instead of panicking on a broken pipe
/// (Rust installs SIG_IGN before `main`).
#[cfg(unix)]
fn reset_sigpipe() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn reset_sigpipe() {}

fn main() {
    reset_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = leopard::runtime::cli::run(&args) {
        eprintln!("error: {message}");
        std::process::exit(2);
    }
}
