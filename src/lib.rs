//! # LeOPArd — learned runtime pruning for attention, reproduced in Rust
//!
//! This crate is the facade of a workspace that reproduces the ISCA 2022
//! paper *"Accelerating Attention through Gradient-Based Learned Runtime
//! Pruning"*: learning per-layer attention-score pruning thresholds by
//! back-propagation (via a differentiable soft threshold and a surrogate L0
//! regularizer) and exploiting them in a bit-serial accelerator that
//! terminates dot products early under a conservative, exact margin.
//!
//! The implementation is split into focused crates, re-exported here:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `leopard-tensor` | dense matrices, stable softmax, RNG, statistics |
//! | [`autodiff`] | `leopard-autodiff` | reverse-mode autodiff tape, Adam/SGD |
//! | [`transformer`] | `leopard-transformer` | attention, encoder layers, synthetic tasks |
//! | [`pruning`] | `leopard-core` | soft threshold, surrogate L0, pruning-aware fine-tuning |
//! | [`quant`] | `leopard-quant` | fixed-point quantization, sign-magnitude, bit planes |
//! | [`accel`] | `leopard-accel` | cycle-level tile simulator, energy/area models, Table 2 |
//! | [`workloads`] | `leopard-workloads` | the 43-task suite and end-to-end pipeline |
//! | [`runtime`] | `leopard-runtime` | parallel suite-execution engine, serving-mode engine, cost-model scheduler, `leopard` CLI |
//! | [`lint`] | `leopard-lint` | `leopard-lint` static contract checker: determinism, observe-only, and panic-safety rules |
//!
//! # Quickstart
//!
//! ```
//! use leopard::workloads::{run_task, full_suite, PipelineOptions};
//!
//! // Simulate the first bAbI task on the AE- and HP-LeOPArd configurations.
//! let suite = full_suite();
//! let result = run_task(&suite[0], &PipelineOptions { max_sim_seq_len: 32, ..Default::default() });
//! assert!(result.ae_speedup > 1.0);
//! ```
//!
//! The runnable examples in `examples/` and the per-figure harness binaries
//! in `crates/bench/` show the full pipeline: fine-tune thresholds, quantize,
//! simulate, and regenerate every table and figure of the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use leopard_accel as accel;
pub use leopard_autodiff as autodiff;
pub use leopard_core as pruning;
pub use leopard_lint as lint;
pub use leopard_quant as quant;
pub use leopard_runtime as runtime;
pub use leopard_tensor as tensor;
pub use leopard_transformer as transformer;
pub use leopard_workloads as workloads;
