//! Integration tests that check the *shape* of the paper's headline claims
//! on the synthetic suite: who wins, by roughly what factor, and where the
//! crossovers fall. Absolute numbers differ from the paper (its substrate was
//! a 65 nm P&R'd chip; ours is a calibrated simulator), but the orderings and
//! rough magnitudes must hold.

use leopard::accel::area::AreaModel;
use leopard::accel::compare::{hp_leopard_65nm_published, table2_rows};
use leopard::accel::config::TileConfig;
use leopard::workloads::pipeline::{run_task, summarize, PipelineOptions};
use leopard::workloads::suite::full_suite;

fn quick_options() -> PipelineOptions {
    PipelineOptions {
        max_sim_seq_len: 48,
        ..PipelineOptions::default()
    }
}

#[test]
fn representative_tasks_show_the_papers_ordering() {
    let suite = full_suite();
    let options = quick_options();
    // One task per family, covering the extremes of the pruning-rate range.
    let picks = [
        "MemN2N Task-1",
        "BERT-B G-QNLI",
        "BERT-L SQuAD",
        "ViT-B CIFAR-10",
    ];
    let results: Vec<_> = suite
        .iter()
        .filter(|t| picks.contains(&t.name.as_str()))
        .map(|t| run_task(t, &options))
        .collect();
    assert_eq!(results.len(), picks.len());

    let by_name = |name: &str| results.iter().find(|r| r.name == name).unwrap();
    let memn2n = by_name("MemN2N Task-1");
    let vit = by_name("ViT-B CIFAR-10");

    // MemN2N has the highest pruning rate and the largest gains; ViT the
    // smallest — the ordering Figures 7, 9, and 10 report.
    assert!(memn2n.measured_pruning_rate > 0.9);
    assert!(vit.measured_pruning_rate < 0.7);
    assert!(memn2n.ae_speedup > vit.ae_speedup);
    assert!(memn2n.ae_energy_reduction > vit.ae_energy_reduction);
    // HP always at least matches AE (more DPUs, same back-end).
    for r in &results {
        assert!(r.hp_speedup >= r.ae_speedup * 0.95, "{}", r.name);
    }
    // Energy reductions exceed speedups on high-pruning tasks (Section 5.3:
    // memory savings contribute to energy but not to cycles).
    assert!(memn2n.ae_energy_reduction > memn2n.ae_speedup);
}

#[test]
fn suite_geometric_means_land_in_the_papers_band() {
    let suite = full_suite();
    let options = quick_options();
    // A stratified subsample keeps this test fast while spanning families.
    let sample: Vec<_> = suite.iter().step_by(4).collect();
    let results: Vec<_> = sample.iter().map(|t| run_task(t, &options)).collect();
    let summary = summarize(&results);
    // The paper's GMeans are 1.9x / 2.4x speedup and 3.9x / 4.0x energy; the
    // synthetic reproduction should land within a factor-of-two band.
    assert!(
        summary.ae_speedup_gmean > 1.2 && summary.ae_speedup_gmean < 4.0,
        "AE speedup gmean {}",
        summary.ae_speedup_gmean
    );
    assert!(summary.hp_speedup_gmean >= summary.ae_speedup_gmean * 0.95);
    assert!(
        summary.ae_energy_gmean > 1.8,
        "AE energy gmean {}",
        summary.ae_energy_gmean
    );
}

#[test]
fn iso_area_and_table2_claims_hold() {
    // AE-LeOPArd matches the baseline area; HP pays ~15%.
    let area = AreaModel::calibrated();
    let baseline = area.total(&TileConfig::baseline());
    let ae = area.total(&TileConfig::ae_leopard());
    let hp = area.total(&TileConfig::hp_leopard());
    assert!((ae / baseline - 1.0).abs() < 0.01);
    assert!(hp / baseline > 1.05 && hp / baseline < 1.25);

    // Table 2: the scaled LeOPArd rows beat SpAtten on GOPs/J and GOPs/s/mm2,
    // and the 9-bit variants beat A3-Base on both efficiency metrics.
    let rows = table2_rows(&hp_leopard_65nm_published());
    let find = |name: &str| rows.iter().find(|r| r.name.contains(name)).unwrap();
    let spatten = find("SpAtten");
    let dennard = find("+dennard");
    let nine_bit = rows.iter().find(|r| r.name.contains("+9b")).unwrap();
    let a3 = find("A3-Base");
    assert!(dennard.gops_per_joule > 2.0 * spatten.gops_per_joule);
    assert!(dennard.gops_per_mm2() > 1.2 * spatten.gops_per_mm2());
    assert!(nine_bit.gops_per_joule > a3.gops_per_joule);
    assert!(nine_bit.gops_per_mm2() > 4.0 * a3.gops_per_mm2());
}

#[test]
fn pruning_and_bit_serial_both_contribute_to_energy_savings() {
    // Figure 11's decomposition: pruning alone saves energy, bit-serial early
    // termination saves more on top, and the two contributions are of the
    // same order (the paper reports 2.1x from pruning and 1.8x from
    // termination on average).
    let suite = full_suite();
    let options = quick_options();
    let result = run_task(&suite[0], &options); // MemN2N Task-1
    let base = result.baseline_breakdown.total();
    let prune = result.pruning_only_breakdown.total();
    let full = result.leopard_breakdown.total();
    let pruning_gain = base / prune;
    let serial_gain = prune / full;
    assert!(pruning_gain > 1.5, "pruning-only gain {pruning_gain}");
    assert!(serial_gain > 1.2, "bit-serial gain {serial_gain}");
    assert!(pruning_gain * serial_gain > 3.0);
}
