//! Tier-1 contract gate: the whole workspace must be `leopard-lint` clean.
//!
//! This is the same check CI runs via `leopard-lint . --deny`, pulled into
//! the test suite so a plain `cargo test` catches a new contract violation
//! (or a reasonless suppression) before it ever reaches a pull request.

use leopard::lint::{lint_workspace, render_text, LintConfig};
use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = lint_workspace(root, &LintConfig::default())
        .unwrap_or_else(|e| panic!("workspace walk failed: {e}"));
    assert!(
        diags.is_empty(),
        "leopard-lint found contract violations:\n{}",
        render_text(&diags)
    );
}
