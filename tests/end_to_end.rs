//! Integration tests spanning the whole stack: fine-tune thresholds on a
//! synthetic task, carry them into the quantized accelerator simulation, and
//! check that the algorithmic and hardware layers agree with each other.

use leopard::accel::baseline::compare_to_baseline;
use leopard::accel::config::TileConfig;
use leopard::accel::energy::EnergyModel;
use leopard::accel::sim::{simulate_head, HeadWorkload};
use leopard::pruning::finetune::{FinetuneConfig, Finetuner};
use leopard::pruning::hooks::HardThresholdHook;
use leopard::pruning::regularizer::L0Config;
use leopard::tensor::rng;
use leopard::transformer::config::{ModelConfig, ModelFamily};
use leopard::transformer::data::{TaskGenerator, TaskSpec};
use leopard::transformer::hooks::IdentityHook;
use leopard::transformer::TransformerClassifier;

fn train_small_model() -> (TransformerClassifier, leopard::pruning::LayerThresholds) {
    let config = ModelConfig {
        family: ModelFamily::BertBase,
        layers: 2,
        heads: 1,
        head_dim: 12,
        model_dim: 12,
        ffn_dim: 24,
        seq_len: 10,
    };
    let spec = TaskSpec {
        classes: 3,
        signal_tokens: 2,
        noise_std: 0.5,
        signal_strength: 2.5,
        seed: 4242,
    };
    let generator = TaskGenerator::new(config, spec);
    let train = generator.generate(20, 1);
    let eval = generator.generate(20, 2);
    let mut model = TransformerClassifier::new(config, spec.classes, 11);
    let report = Finetuner::new(FinetuneConfig {
        epochs: 2,
        l0: L0Config {
            lambda: 0.2,
            ..L0Config::default()
        },
        ..FinetuneConfig::default()
    })
    .run(&mut model, &train, &eval);
    (model, report.thresholds)
}

#[test]
fn learned_thresholds_prune_in_inference_and_in_the_simulator() {
    let (model, thresholds) = train_small_model();

    // Software inference path with hard-threshold pruning.
    let config = *model.config();
    let generator = TaskGenerator::new(
        config,
        TaskSpec {
            classes: 3,
            signal_tokens: 2,
            noise_std: 0.5,
            signal_strength: 2.5,
            seed: 4242,
        },
    );
    let eval = generator.generate(8, 3);
    let hook = HardThresholdHook::new(thresholds.clone());
    let mut software_pruned = 0u64;
    let mut total = 0u64;
    for (x, _) in eval.iter() {
        let (_, traces) = model.forward_inference(x, &hook);
        for layer in traces {
            for head in layer {
                software_pruned += head.pruned_count as u64;
                total += head.raw_scores.len() as u64;
            }
        }
    }
    assert!(total > 0);
    let software_rate = software_pruned as f64 / total as f64;
    assert!(
        software_rate > 0.0 && software_rate < 1.0,
        "learned thresholds should prune some but not all scores"
    );

    // Hardware path: simulate the first layer's Q/K under the same threshold.
    let sample = &eval.samples[0].input;
    let layer0 = &model.layers[0].attention.heads[0];
    let q = sample.matmul(&layer0.wq);
    let k = sample.matmul(&layer0.wk);
    let workload = HeadWorkload::from_float(&q, &k, thresholds.get(0), 12);
    let sim = simulate_head(&workload, &TileConfig::ae_leopard());

    // The simulator's pruning decision (threshold comparison on quantized
    // scores) must roughly agree with the float-domain hook decision for the
    // same layer.
    let layer0_rate = hook
        .stats()
        .layer_pruning_rate(0)
        .expect("layer 0 was evaluated");
    assert!(
        (sim.pruning_rate() - layer0_rate as f64).abs() < 0.15,
        "simulator rate {} vs software layer-0 rate {}",
        sim.pruning_rate(),
        layer0_rate
    );
}

#[test]
fn pruned_model_output_stays_close_to_dense_output() {
    let (model, thresholds) = train_small_model();
    let config = *model.config();
    let mut r = rng::seeded(77);
    let x = rng::normal_matrix(&mut r, config.seq_len, config.model_dim, 0.0, 1.0);

    let (dense_logits, _) = model.forward_inference(&x, &IdentityHook);
    let hook = HardThresholdHook::new(thresholds);
    let (pruned_logits, _) = model.forward_inference(&x, &hook);

    // The learned thresholds were co-trained with the weights, so pruning
    // should barely move the logits (the paper reports <0.2% accuracy delta).
    let diff = (&dense_logits - &pruned_logits).frobenius_norm();
    let scale = dense_logits.frobenius_norm().max(1e-6);
    assert!(
        diff / scale < 0.35,
        "pruned logits moved too far: relative diff {}",
        diff / scale
    );
}

#[test]
fn speedup_grows_with_pruning_rate_across_thresholds() {
    // End-to-end sanity of the hardware model: as the threshold rises, the
    // pruning rate rises and so do speedup and energy reduction.
    let mut r = rng::seeded(5);
    let q = rng::normal_matrix(&mut r, 48, 64, 0.0, 1.0);
    let k = rng::normal_matrix(&mut r, 48, 64, 0.0, 1.0);
    let model = EnergyModel::calibrated();
    let mut last_speedup = 0.0;
    let mut last_energy = 0.0;
    for (i, threshold) in [-0.5f32, 0.0, 0.5, 1.0].iter().enumerate() {
        let workload = HeadWorkload::from_float(&q, &k, *threshold, 12);
        let cmp = compare_to_baseline(&workload, &TileConfig::ae_leopard(), &model);
        if i > 0 {
            assert!(
                cmp.speedup() >= last_speedup * 0.98,
                "speedup should not drop when the threshold rises"
            );
            assert!(cmp.energy_reduction() >= last_energy * 0.98);
        }
        last_speedup = cmp.speedup();
        last_energy = cmp.energy_reduction();
    }
    assert!(
        last_speedup > 1.5,
        "high thresholds should give real speedups"
    );
}
