use std::sync::atomic::{AtomicU64, Ordering};

pub fn jobs_done(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}
