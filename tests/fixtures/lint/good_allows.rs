//! Known-good file: every violation carries a reasoned allow, and the
//! lexer stressors below must not leak tokens into the rule engine.

pub fn allowed(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // lint:allow(panic-in-library, reason = "callers guarantee a non-empty slice")
}

pub fn stressors() -> usize {
    let s = r#"Instant::now() and HashMap and panic!() inside a raw "string""#;
    let c = '"';
    let b = b'\'';
    /* nested /* block comment mentioning SystemTime */ still opaque */
    s.len() + (c as usize) + (b as usize)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        Some(1).unwrap();
    }
}
