pub fn finish(telemetry: &Telemetry) -> String {
    telemetry.flush()
}
