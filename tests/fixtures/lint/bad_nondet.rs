use std::collections::HashMap;

pub fn tally(names: &[&str]) -> usize {
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for n in names {
        *seen.entry(n).or_insert(0) += 1;
    }
    seen.len()
}
