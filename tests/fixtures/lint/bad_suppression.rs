pub fn wrong(xs: &[u32]) -> u32 {
    // lint:allow(panic-in-library)
    *xs.first().unwrap()
}

pub fn unknown(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // lint:allow(not-a-rule, reason = "names a rule that does not exist")
}

// lint:allow(wall-clock-in-virtual-path, reason = "nothing on the next line reads a clock")
pub fn stale() {}
