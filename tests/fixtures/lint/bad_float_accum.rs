pub fn total(shards: &[f64]) -> f64 {
    let mut total = 0.0;
    for s in shards {
        total += s;
    }
    total
}
