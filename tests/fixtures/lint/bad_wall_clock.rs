pub fn measure() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
