pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn must(map: Option<u32>) -> u32 {
    map.expect("present")
}

pub fn never(flag: bool) {
    if flag {
        panic!("boom");
    }
}
