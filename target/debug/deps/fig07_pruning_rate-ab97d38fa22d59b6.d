/root/repo/target/debug/deps/fig07_pruning_rate-ab97d38fa22d59b6.d: crates/bench/src/bin/fig07_pruning_rate.rs

/root/repo/target/debug/deps/libfig07_pruning_rate-ab97d38fa22d59b6.rmeta: crates/bench/src/bin/fig07_pruning_rate.rs

crates/bench/src/bin/fig07_pruning_rate.rs:
