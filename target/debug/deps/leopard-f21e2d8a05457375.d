/root/repo/target/debug/deps/leopard-f21e2d8a05457375.d: crates/runtime/src/bin/leopard.rs

/root/repo/target/debug/deps/leopard-f21e2d8a05457375: crates/runtime/src/bin/leopard.rs

crates/runtime/src/bin/leopard.rs:
