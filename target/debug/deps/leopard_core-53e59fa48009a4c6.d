/root/repo/target/debug/deps/leopard_core-53e59fa48009a4c6.d: crates/core/src/lib.rs crates/core/src/finetune.rs crates/core/src/hooks.rs crates/core/src/regularizer.rs crates/core/src/soft_threshold.rs crates/core/src/stats.rs crates/core/src/thresholds.rs

/root/repo/target/debug/deps/libleopard_core-53e59fa48009a4c6.rmeta: crates/core/src/lib.rs crates/core/src/finetune.rs crates/core/src/hooks.rs crates/core/src/regularizer.rs crates/core/src/soft_threshold.rs crates/core/src/stats.rs crates/core/src/thresholds.rs

crates/core/src/lib.rs:
crates/core/src/finetune.rs:
crates/core/src/hooks.rs:
crates/core/src/regularizer.rs:
crates/core/src/soft_threshold.rs:
crates/core/src/stats.rs:
crates/core/src/thresholds.rs:
