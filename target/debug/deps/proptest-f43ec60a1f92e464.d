/root/repo/target/debug/deps/proptest-f43ec60a1f92e464.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f43ec60a1f92e464.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f43ec60a1f92e464.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
