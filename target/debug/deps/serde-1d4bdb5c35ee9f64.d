/root/repo/target/debug/deps/serde-1d4bdb5c35ee9f64.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-1d4bdb5c35ee9f64.rmeta: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
