/root/repo/target/debug/deps/fig02_finetune_dynamics-59a2c479c3026eb2.d: crates/bench/src/bin/fig02_finetune_dynamics.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_finetune_dynamics-59a2c479c3026eb2.rmeta: crates/bench/src/bin/fig02_finetune_dynamics.rs Cargo.toml

crates/bench/src/bin/fig02_finetune_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
