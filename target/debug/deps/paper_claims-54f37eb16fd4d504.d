/root/repo/target/debug/deps/paper_claims-54f37eb16fd4d504.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-54f37eb16fd4d504: tests/paper_claims.rs

tests/paper_claims.rs:
