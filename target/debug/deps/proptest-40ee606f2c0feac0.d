/root/repo/target/debug/deps/proptest-40ee606f2c0feac0.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-40ee606f2c0feac0.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
