/root/repo/target/debug/deps/rand-83f6f4334e1ed9e7.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-83f6f4334e1ed9e7.rlib: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-83f6f4334e1ed9e7.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
