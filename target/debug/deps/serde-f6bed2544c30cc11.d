/root/repo/target/debug/deps/serde-f6bed2544c30cc11.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/serde-f6bed2544c30cc11: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
