/root/repo/target/debug/deps/fig12_area_breakdown-d4ab06162731e9bd.d: crates/bench/src/bin/fig12_area_breakdown.rs

/root/repo/target/debug/deps/libfig12_area_breakdown-d4ab06162731e9bd.rmeta: crates/bench/src/bin/fig12_area_breakdown.rs

crates/bench/src/bin/fig12_area_breakdown.rs:
