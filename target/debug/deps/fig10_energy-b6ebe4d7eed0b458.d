/root/repo/target/debug/deps/fig10_energy-b6ebe4d7eed0b458.d: crates/bench/src/bin/fig10_energy.rs

/root/repo/target/debug/deps/fig10_energy-b6ebe4d7eed0b458: crates/bench/src/bin/fig10_energy.rs

crates/bench/src/bin/fig10_energy.rs:
