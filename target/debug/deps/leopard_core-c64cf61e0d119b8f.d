/root/repo/target/debug/deps/leopard_core-c64cf61e0d119b8f.d: crates/core/src/lib.rs crates/core/src/finetune.rs crates/core/src/hooks.rs crates/core/src/regularizer.rs crates/core/src/soft_threshold.rs crates/core/src/stats.rs crates/core/src/thresholds.rs

/root/repo/target/debug/deps/leopard_core-c64cf61e0d119b8f: crates/core/src/lib.rs crates/core/src/finetune.rs crates/core/src/hooks.rs crates/core/src/regularizer.rs crates/core/src/soft_threshold.rs crates/core/src/stats.rs crates/core/src/thresholds.rs

crates/core/src/lib.rs:
crates/core/src/finetune.rs:
crates/core/src/hooks.rs:
crates/core/src/regularizer.rs:
crates/core/src/soft_threshold.rs:
crates/core/src/stats.rs:
crates/core/src/thresholds.rs:
