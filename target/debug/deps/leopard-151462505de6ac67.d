/root/repo/target/debug/deps/leopard-151462505de6ac67.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libleopard-151462505de6ac67.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
