/root/repo/target/debug/deps/leopard_tensor-04e034b27bd7a09f.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libleopard_tensor-04e034b27bd7a09f.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
