/root/repo/target/debug/deps/fig03_early_termination_example-34c6ee36d5342928.d: crates/bench/src/bin/fig03_early_termination_example.rs

/root/repo/target/debug/deps/fig03_early_termination_example-34c6ee36d5342928: crates/bench/src/bin/fig03_early_termination_example.rs

crates/bench/src/bin/fig03_early_termination_example.rs:
