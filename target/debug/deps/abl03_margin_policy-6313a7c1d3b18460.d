/root/repo/target/debug/deps/abl03_margin_policy-6313a7c1d3b18460.d: crates/bench/src/bin/abl03_margin_policy.rs Cargo.toml

/root/repo/target/debug/deps/libabl03_margin_policy-6313a7c1d3b18460.rmeta: crates/bench/src/bin/abl03_margin_policy.rs Cargo.toml

crates/bench/src/bin/abl03_margin_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
