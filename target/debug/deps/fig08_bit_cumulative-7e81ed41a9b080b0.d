/root/repo/target/debug/deps/fig08_bit_cumulative-7e81ed41a9b080b0.d: crates/bench/src/bin/fig08_bit_cumulative.rs

/root/repo/target/debug/deps/libfig08_bit_cumulative-7e81ed41a9b080b0.rmeta: crates/bench/src/bin/fig08_bit_cumulative.rs

crates/bench/src/bin/fig08_bit_cumulative.rs:
