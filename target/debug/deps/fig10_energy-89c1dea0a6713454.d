/root/repo/target/debug/deps/fig10_energy-89c1dea0a6713454.d: crates/bench/src/bin/fig10_energy.rs

/root/repo/target/debug/deps/libfig10_energy-89c1dea0a6713454.rmeta: crates/bench/src/bin/fig10_energy.rs

crates/bench/src/bin/fig10_energy.rs:
