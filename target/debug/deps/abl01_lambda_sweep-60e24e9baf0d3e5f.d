/root/repo/target/debug/deps/abl01_lambda_sweep-60e24e9baf0d3e5f.d: crates/bench/src/bin/abl01_lambda_sweep.rs

/root/repo/target/debug/deps/abl01_lambda_sweep-60e24e9baf0d3e5f: crates/bench/src/bin/abl01_lambda_sweep.rs

crates/bench/src/bin/abl01_lambda_sweep.rs:
