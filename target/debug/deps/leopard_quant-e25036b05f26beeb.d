/root/repo/target/debug/deps/leopard_quant-e25036b05f26beeb.d: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs

/root/repo/target/debug/deps/libleopard_quant-e25036b05f26beeb.rmeta: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs

crates/quant/src/lib.rs:
crates/quant/src/bitserial.rs:
crates/quant/src/fixed.rs:
crates/quant/src/signmag.rs:
