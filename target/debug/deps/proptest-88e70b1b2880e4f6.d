/root/repo/target/debug/deps/proptest-88e70b1b2880e4f6.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-88e70b1b2880e4f6.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
