/root/repo/target/debug/deps/fig02_finetune_dynamics-89b22ec3b4cac82c.d: crates/bench/src/bin/fig02_finetune_dynamics.rs

/root/repo/target/debug/deps/libfig02_finetune_dynamics-89b22ec3b4cac82c.rmeta: crates/bench/src/bin/fig02_finetune_dynamics.rs

crates/bench/src/bin/fig02_finetune_dynamics.rs:
