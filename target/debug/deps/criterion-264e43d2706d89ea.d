/root/repo/target/debug/deps/criterion-264e43d2706d89ea.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-264e43d2706d89ea.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
