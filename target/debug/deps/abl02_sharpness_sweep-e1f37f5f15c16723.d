/root/repo/target/debug/deps/abl02_sharpness_sweep-e1f37f5f15c16723.d: crates/bench/src/bin/abl02_sharpness_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libabl02_sharpness_sweep-e1f37f5f15c16723.rmeta: crates/bench/src/bin/abl02_sharpness_sweep.rs Cargo.toml

crates/bench/src/bin/abl02_sharpness_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
