/root/repo/target/debug/deps/fig11_energy_breakdown-c6ed64ee2e839073.d: crates/bench/src/bin/fig11_energy_breakdown.rs

/root/repo/target/debug/deps/fig11_energy_breakdown-c6ed64ee2e839073: crates/bench/src/bin/fig11_energy_breakdown.rs

crates/bench/src/bin/fig11_energy_breakdown.rs:
