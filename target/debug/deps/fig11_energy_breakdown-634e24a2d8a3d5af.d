/root/repo/target/debug/deps/fig11_energy_breakdown-634e24a2d8a3d5af.d: crates/bench/src/bin/fig11_energy_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_energy_breakdown-634e24a2d8a3d5af.rmeta: crates/bench/src/bin/fig11_energy_breakdown.rs Cargo.toml

crates/bench/src/bin/fig11_energy_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
