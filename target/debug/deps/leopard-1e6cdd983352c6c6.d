/root/repo/target/debug/deps/leopard-1e6cdd983352c6c6.d: src/lib.rs

/root/repo/target/debug/deps/libleopard-1e6cdd983352c6c6.rmeta: src/lib.rs

src/lib.rs:
