/root/repo/target/debug/deps/leopard_tensor-7941898e007749b2.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/libleopard_tensor-7941898e007749b2.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/libleopard_tensor-7941898e007749b2.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
