/root/repo/target/debug/deps/leopard-93b40d5d6fb2caf4.d: src/bin/leopard.rs

/root/repo/target/debug/deps/leopard-93b40d5d6fb2caf4: src/bin/leopard.rs

src/bin/leopard.rs:
