/root/repo/target/debug/deps/fig08_bit_cumulative-486348500e53bec9.d: crates/bench/src/bin/fig08_bit_cumulative.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_bit_cumulative-486348500e53bec9.rmeta: crates/bench/src/bin/fig08_bit_cumulative.rs Cargo.toml

crates/bench/src/bin/fig08_bit_cumulative.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
