/root/repo/target/debug/deps/tab01_config-78b8cd1deabfc1c4.d: crates/bench/src/bin/tab01_config.rs Cargo.toml

/root/repo/target/debug/deps/libtab01_config-78b8cd1deabfc1c4.rmeta: crates/bench/src/bin/tab01_config.rs Cargo.toml

crates/bench/src/bin/tab01_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
