/root/repo/target/debug/deps/serde_derive-1cc7d516aa1b12d9.d: crates/serde/derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-1cc7d516aa1b12d9: crates/serde/derive/src/lib.rs

crates/serde/derive/src/lib.rs:
