/root/repo/target/debug/deps/tab01_config-8d8fc09a819e1184.d: crates/bench/src/bin/tab01_config.rs

/root/repo/target/debug/deps/tab01_config-8d8fc09a819e1184: crates/bench/src/bin/tab01_config.rs

crates/bench/src/bin/tab01_config.rs:
