/root/repo/target/debug/deps/fig06_accuracy-c3cf9b1f88b41573.d: crates/bench/src/bin/fig06_accuracy.rs

/root/repo/target/debug/deps/fig06_accuracy-c3cf9b1f88b41573: crates/bench/src/bin/fig06_accuracy.rs

crates/bench/src/bin/fig06_accuracy.rs:
