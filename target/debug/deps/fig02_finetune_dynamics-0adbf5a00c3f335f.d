/root/repo/target/debug/deps/fig02_finetune_dynamics-0adbf5a00c3f335f.d: crates/bench/src/bin/fig02_finetune_dynamics.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_finetune_dynamics-0adbf5a00c3f335f.rmeta: crates/bench/src/bin/fig02_finetune_dynamics.rs Cargo.toml

crates/bench/src/bin/fig02_finetune_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
