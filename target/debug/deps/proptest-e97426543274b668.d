/root/repo/target/debug/deps/proptest-e97426543274b668.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e97426543274b668.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
