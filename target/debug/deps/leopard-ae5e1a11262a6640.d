/root/repo/target/debug/deps/leopard-ae5e1a11262a6640.d: src/lib.rs

/root/repo/target/debug/deps/libleopard-ae5e1a11262a6640.rmeta: src/lib.rs

src/lib.rs:
