/root/repo/target/debug/deps/leopard_autodiff-aee45a5348c1f607.d: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/ops.rs crates/autodiff/src/optim.rs crates/autodiff/src/tape.rs

/root/repo/target/debug/deps/libleopard_autodiff-aee45a5348c1f607.rmeta: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/ops.rs crates/autodiff/src/optim.rs crates/autodiff/src/tape.rs

crates/autodiff/src/lib.rs:
crates/autodiff/src/gradcheck.rs:
crates/autodiff/src/ops.rs:
crates/autodiff/src/optim.rs:
crates/autodiff/src/tape.rs:
