/root/repo/target/debug/deps/fig03_early_termination_example-e63b0d24588263eb.d: crates/bench/src/bin/fig03_early_termination_example.rs

/root/repo/target/debug/deps/libfig03_early_termination_example-e63b0d24588263eb.rmeta: crates/bench/src/bin/fig03_early_termination_example.rs

crates/bench/src/bin/fig03_early_termination_example.rs:
