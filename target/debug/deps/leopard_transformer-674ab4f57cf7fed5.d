/root/repo/target/debug/deps/leopard_transformer-674ab4f57cf7fed5.d: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/config.rs crates/transformer/src/data.rs crates/transformer/src/hooks.rs crates/transformer/src/mask.rs crates/transformer/src/model.rs

/root/repo/target/debug/deps/libleopard_transformer-674ab4f57cf7fed5.rmeta: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/config.rs crates/transformer/src/data.rs crates/transformer/src/hooks.rs crates/transformer/src/mask.rs crates/transformer/src/model.rs

crates/transformer/src/lib.rs:
crates/transformer/src/attention.rs:
crates/transformer/src/config.rs:
crates/transformer/src/data.rs:
crates/transformer/src/hooks.rs:
crates/transformer/src/mask.rs:
crates/transformer/src/model.rs:
