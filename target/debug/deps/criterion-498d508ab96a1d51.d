/root/repo/target/debug/deps/criterion-498d508ab96a1d51.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-498d508ab96a1d51.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
