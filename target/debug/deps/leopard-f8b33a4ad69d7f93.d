/root/repo/target/debug/deps/leopard-f8b33a4ad69d7f93.d: crates/runtime/src/bin/leopard.rs

/root/repo/target/debug/deps/libleopard-f8b33a4ad69d7f93.rmeta: crates/runtime/src/bin/leopard.rs

crates/runtime/src/bin/leopard.rs:
