/root/repo/target/debug/deps/rand-edc51466e524e734.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-edc51466e524e734.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
