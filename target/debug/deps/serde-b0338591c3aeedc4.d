/root/repo/target/debug/deps/serde-b0338591c3aeedc4.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b0338591c3aeedc4.rmeta: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
