/root/repo/target/debug/deps/leopard_quant-5c5a3ab6ff9e9a20.d: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs Cargo.toml

/root/repo/target/debug/deps/libleopard_quant-5c5a3ab6ff9e9a20.rmeta: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs Cargo.toml

crates/quant/src/lib.rs:
crates/quant/src/bitserial.rs:
crates/quant/src/fixed.rs:
crates/quant/src/signmag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
