/root/repo/target/debug/deps/fig14_granularity_sweep-dae8ea634abed4b9.d: crates/bench/src/bin/fig14_granularity_sweep.rs

/root/repo/target/debug/deps/libfig14_granularity_sweep-dae8ea634abed4b9.rmeta: crates/bench/src/bin/fig14_granularity_sweep.rs

crates/bench/src/bin/fig14_granularity_sweep.rs:
