/root/repo/target/debug/deps/attention-35b1fbb763def349.d: crates/bench/benches/attention.rs Cargo.toml

/root/repo/target/debug/deps/libattention-35b1fbb763def349.rmeta: crates/bench/benches/attention.rs Cargo.toml

crates/bench/benches/attention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
