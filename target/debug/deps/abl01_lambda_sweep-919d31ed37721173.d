/root/repo/target/debug/deps/abl01_lambda_sweep-919d31ed37721173.d: crates/bench/src/bin/abl01_lambda_sweep.rs

/root/repo/target/debug/deps/libabl01_lambda_sweep-919d31ed37721173.rmeta: crates/bench/src/bin/abl01_lambda_sweep.rs

crates/bench/src/bin/abl01_lambda_sweep.rs:
