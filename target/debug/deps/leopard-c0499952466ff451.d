/root/repo/target/debug/deps/leopard-c0499952466ff451.d: src/bin/leopard.rs Cargo.toml

/root/repo/target/debug/deps/libleopard-c0499952466ff451.rmeta: src/bin/leopard.rs Cargo.toml

src/bin/leopard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
