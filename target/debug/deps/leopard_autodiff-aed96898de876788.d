/root/repo/target/debug/deps/leopard_autodiff-aed96898de876788.d: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/ops.rs crates/autodiff/src/optim.rs crates/autodiff/src/tape.rs

/root/repo/target/debug/deps/libleopard_autodiff-aed96898de876788.rlib: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/ops.rs crates/autodiff/src/optim.rs crates/autodiff/src/tape.rs

/root/repo/target/debug/deps/libleopard_autodiff-aed96898de876788.rmeta: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/ops.rs crates/autodiff/src/optim.rs crates/autodiff/src/tape.rs

crates/autodiff/src/lib.rs:
crates/autodiff/src/gradcheck.rs:
crates/autodiff/src/ops.rs:
crates/autodiff/src/optim.rs:
crates/autodiff/src/tape.rs:
