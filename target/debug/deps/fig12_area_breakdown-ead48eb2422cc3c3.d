/root/repo/target/debug/deps/fig12_area_breakdown-ead48eb2422cc3c3.d: crates/bench/src/bin/fig12_area_breakdown.rs

/root/repo/target/debug/deps/libfig12_area_breakdown-ead48eb2422cc3c3.rmeta: crates/bench/src/bin/fig12_area_breakdown.rs

crates/bench/src/bin/fig12_area_breakdown.rs:
