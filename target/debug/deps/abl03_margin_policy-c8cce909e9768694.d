/root/repo/target/debug/deps/abl03_margin_policy-c8cce909e9768694.d: crates/bench/src/bin/abl03_margin_policy.rs

/root/repo/target/debug/deps/abl03_margin_policy-c8cce909e9768694: crates/bench/src/bin/abl03_margin_policy.rs

crates/bench/src/bin/abl03_margin_policy.rs:
