/root/repo/target/debug/deps/fig07_pruning_rate-310db27eb2af94cc.d: crates/bench/src/bin/fig07_pruning_rate.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_pruning_rate-310db27eb2af94cc.rmeta: crates/bench/src/bin/fig07_pruning_rate.rs Cargo.toml

crates/bench/src/bin/fig07_pruning_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
