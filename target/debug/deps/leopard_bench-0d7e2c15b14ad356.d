/root/repo/target/debug/deps/leopard_bench-0d7e2c15b14ad356.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libleopard_bench-0d7e2c15b14ad356.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
