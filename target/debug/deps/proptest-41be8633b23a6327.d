/root/repo/target/debug/deps/proptest-41be8633b23a6327.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-41be8633b23a6327.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
