/root/repo/target/debug/deps/leopard-498dd3a971897793.d: src/bin/leopard.rs

/root/repo/target/debug/deps/libleopard-498dd3a971897793.rmeta: src/bin/leopard.rs

src/bin/leopard.rs:
