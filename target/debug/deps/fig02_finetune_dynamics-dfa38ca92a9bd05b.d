/root/repo/target/debug/deps/fig02_finetune_dynamics-dfa38ca92a9bd05b.d: crates/bench/src/bin/fig02_finetune_dynamics.rs

/root/repo/target/debug/deps/fig02_finetune_dynamics-dfa38ca92a9bd05b: crates/bench/src/bin/fig02_finetune_dynamics.rs

crates/bench/src/bin/fig02_finetune_dynamics.rs:
