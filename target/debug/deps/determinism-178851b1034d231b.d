/root/repo/target/debug/deps/determinism-178851b1034d231b.d: crates/runtime/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-178851b1034d231b.rmeta: crates/runtime/tests/determinism.rs Cargo.toml

crates/runtime/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
