/root/repo/target/debug/deps/fig09_speedup-c90f9705957a45bf.d: crates/bench/src/bin/fig09_speedup.rs

/root/repo/target/debug/deps/libfig09_speedup-c90f9705957a45bf.rmeta: crates/bench/src/bin/fig09_speedup.rs

crates/bench/src/bin/fig09_speedup.rs:
