/root/repo/target/debug/deps/leopard-f565d7bef2570177.d: src/lib.rs

/root/repo/target/debug/deps/libleopard-f565d7bef2570177.rlib: src/lib.rs

/root/repo/target/debug/deps/libleopard-f565d7bef2570177.rmeta: src/lib.rs

src/lib.rs:
