/root/repo/target/debug/deps/serde_derive-cd3f0803360dd71d.d: crates/serde/derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-cd3f0803360dd71d.rmeta: crates/serde/derive/src/lib.rs

crates/serde/derive/src/lib.rs:
