/root/repo/target/debug/deps/leopard-30e709dc09a21b1e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libleopard-30e709dc09a21b1e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
