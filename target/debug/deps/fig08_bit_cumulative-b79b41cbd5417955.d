/root/repo/target/debug/deps/fig08_bit_cumulative-b79b41cbd5417955.d: crates/bench/src/bin/fig08_bit_cumulative.rs

/root/repo/target/debug/deps/fig08_bit_cumulative-b79b41cbd5417955: crates/bench/src/bin/fig08_bit_cumulative.rs

crates/bench/src/bin/fig08_bit_cumulative.rs:
