/root/repo/target/debug/deps/end_to_end-4d003d8ddbc5c813.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4d003d8ddbc5c813: tests/end_to_end.rs

tests/end_to_end.rs:
