/root/repo/target/debug/deps/paper_claims-9d7433514e4bf3da.d: tests/paper_claims.rs

/root/repo/target/debug/deps/libpaper_claims-9d7433514e4bf3da.rmeta: tests/paper_claims.rs

tests/paper_claims.rs:
