/root/repo/target/debug/deps/serde-6903d9ec8c49aa07.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6903d9ec8c49aa07.rmeta: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
