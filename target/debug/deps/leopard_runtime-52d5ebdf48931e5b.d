/root/repo/target/debug/deps/leopard_runtime-52d5ebdf48931e5b.d: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/cli.rs crates/runtime/src/engine.rs crates/runtime/src/pool.rs crates/runtime/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libleopard_runtime-52d5ebdf48931e5b.rmeta: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/cli.rs crates/runtime/src/engine.rs crates/runtime/src/pool.rs crates/runtime/src/report.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/cli.rs:
crates/runtime/src/engine.rs:
crates/runtime/src/pool.rs:
crates/runtime/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
