/root/repo/target/debug/deps/leopard_accel-1bfe8537f708f6de.d: crates/accel/src/lib.rs crates/accel/src/area.rs crates/accel/src/baseline.rs crates/accel/src/compare.rs crates/accel/src/config.rs crates/accel/src/cost.rs crates/accel/src/dpu.rs crates/accel/src/energy.rs crates/accel/src/schedule.rs crates/accel/src/sim.rs crates/accel/src/softmax.rs Cargo.toml

/root/repo/target/debug/deps/libleopard_accel-1bfe8537f708f6de.rmeta: crates/accel/src/lib.rs crates/accel/src/area.rs crates/accel/src/baseline.rs crates/accel/src/compare.rs crates/accel/src/config.rs crates/accel/src/cost.rs crates/accel/src/dpu.rs crates/accel/src/energy.rs crates/accel/src/schedule.rs crates/accel/src/sim.rs crates/accel/src/softmax.rs Cargo.toml

crates/accel/src/lib.rs:
crates/accel/src/area.rs:
crates/accel/src/baseline.rs:
crates/accel/src/compare.rs:
crates/accel/src/config.rs:
crates/accel/src/cost.rs:
crates/accel/src/dpu.rs:
crates/accel/src/energy.rs:
crates/accel/src/schedule.rs:
crates/accel/src/sim.rs:
crates/accel/src/softmax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
