/root/repo/target/debug/deps/fig06_accuracy-a24ce5fdb61c7ea4.d: crates/bench/src/bin/fig06_accuracy.rs

/root/repo/target/debug/deps/libfig06_accuracy-a24ce5fdb61c7ea4.rmeta: crates/bench/src/bin/fig06_accuracy.rs

crates/bench/src/bin/fig06_accuracy.rs:
