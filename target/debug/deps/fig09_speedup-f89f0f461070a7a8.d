/root/repo/target/debug/deps/fig09_speedup-f89f0f461070a7a8.d: crates/bench/src/bin/fig09_speedup.rs

/root/repo/target/debug/deps/libfig09_speedup-f89f0f461070a7a8.rmeta: crates/bench/src/bin/fig09_speedup.rs

crates/bench/src/bin/fig09_speedup.rs:
