/root/repo/target/debug/deps/abl02_sharpness_sweep-b29c961960c144ea.d: crates/bench/src/bin/abl02_sharpness_sweep.rs

/root/repo/target/debug/deps/libabl02_sharpness_sweep-b29c961960c144ea.rmeta: crates/bench/src/bin/abl02_sharpness_sweep.rs

crates/bench/src/bin/abl02_sharpness_sweep.rs:
