/root/repo/target/debug/deps/fig12_area_breakdown-0583b06555e8ab90.d: crates/bench/src/bin/fig12_area_breakdown.rs

/root/repo/target/debug/deps/fig12_area_breakdown-0583b06555e8ab90: crates/bench/src/bin/fig12_area_breakdown.rs

crates/bench/src/bin/fig12_area_breakdown.rs:
