/root/repo/target/debug/deps/abl02_sharpness_sweep-dbb4ab1de31eb608.d: crates/bench/src/bin/abl02_sharpness_sweep.rs

/root/repo/target/debug/deps/libabl02_sharpness_sweep-dbb4ab1de31eb608.rmeta: crates/bench/src/bin/abl02_sharpness_sweep.rs

crates/bench/src/bin/abl02_sharpness_sweep.rs:
