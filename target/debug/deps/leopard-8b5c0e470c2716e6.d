/root/repo/target/debug/deps/leopard-8b5c0e470c2716e6.d: src/lib.rs

/root/repo/target/debug/deps/leopard-8b5c0e470c2716e6: src/lib.rs

src/lib.rs:
