/root/repo/target/debug/deps/fig13_nqk_sweep-ee1ec2a16a1ff52d.d: crates/bench/src/bin/fig13_nqk_sweep.rs

/root/repo/target/debug/deps/libfig13_nqk_sweep-ee1ec2a16a1ff52d.rmeta: crates/bench/src/bin/fig13_nqk_sweep.rs

crates/bench/src/bin/fig13_nqk_sweep.rs:
