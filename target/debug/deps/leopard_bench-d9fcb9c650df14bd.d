/root/repo/target/debug/deps/leopard_bench-d9fcb9c650df14bd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libleopard_bench-d9fcb9c650df14bd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
