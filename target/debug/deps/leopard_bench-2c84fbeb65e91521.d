/root/repo/target/debug/deps/leopard_bench-2c84fbeb65e91521.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/leopard_bench-2c84fbeb65e91521: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
