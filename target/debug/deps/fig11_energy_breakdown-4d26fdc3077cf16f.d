/root/repo/target/debug/deps/fig11_energy_breakdown-4d26fdc3077cf16f.d: crates/bench/src/bin/fig11_energy_breakdown.rs

/root/repo/target/debug/deps/libfig11_energy_breakdown-4d26fdc3077cf16f.rmeta: crates/bench/src/bin/fig11_energy_breakdown.rs

crates/bench/src/bin/fig11_energy_breakdown.rs:
