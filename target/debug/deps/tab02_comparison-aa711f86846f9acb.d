/root/repo/target/debug/deps/tab02_comparison-aa711f86846f9acb.d: crates/bench/src/bin/tab02_comparison.rs

/root/repo/target/debug/deps/libtab02_comparison-aa711f86846f9acb.rmeta: crates/bench/src/bin/tab02_comparison.rs

crates/bench/src/bin/tab02_comparison.rs:
