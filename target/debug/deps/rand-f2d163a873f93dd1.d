/root/repo/target/debug/deps/rand-f2d163a873f93dd1.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f2d163a873f93dd1.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
