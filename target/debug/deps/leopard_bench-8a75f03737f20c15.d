/root/repo/target/debug/deps/leopard_bench-8a75f03737f20c15.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libleopard_bench-8a75f03737f20c15.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
