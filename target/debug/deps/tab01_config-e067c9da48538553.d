/root/repo/target/debug/deps/tab01_config-e067c9da48538553.d: crates/bench/src/bin/tab01_config.rs

/root/repo/target/debug/deps/libtab01_config-e067c9da48538553.rmeta: crates/bench/src/bin/tab01_config.rs

crates/bench/src/bin/tab01_config.rs:
