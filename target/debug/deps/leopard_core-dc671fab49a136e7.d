/root/repo/target/debug/deps/leopard_core-dc671fab49a136e7.d: crates/core/src/lib.rs crates/core/src/finetune.rs crates/core/src/hooks.rs crates/core/src/regularizer.rs crates/core/src/soft_threshold.rs crates/core/src/stats.rs crates/core/src/thresholds.rs

/root/repo/target/debug/deps/libleopard_core-dc671fab49a136e7.rmeta: crates/core/src/lib.rs crates/core/src/finetune.rs crates/core/src/hooks.rs crates/core/src/regularizer.rs crates/core/src/soft_threshold.rs crates/core/src/stats.rs crates/core/src/thresholds.rs

crates/core/src/lib.rs:
crates/core/src/finetune.rs:
crates/core/src/hooks.rs:
crates/core/src/regularizer.rs:
crates/core/src/soft_threshold.rs:
crates/core/src/stats.rs:
crates/core/src/thresholds.rs:
