/root/repo/target/debug/deps/finetune-e10f1e48d6304a5e.d: crates/bench/benches/finetune.rs Cargo.toml

/root/repo/target/debug/deps/libfinetune-e10f1e48d6304a5e.rmeta: crates/bench/benches/finetune.rs Cargo.toml

crates/bench/benches/finetune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
