/root/repo/target/debug/deps/fig07_pruning_rate-ed6a9d63a3e9c6dd.d: crates/bench/src/bin/fig07_pruning_rate.rs

/root/repo/target/debug/deps/fig07_pruning_rate-ed6a9d63a3e9c6dd: crates/bench/src/bin/fig07_pruning_rate.rs

crates/bench/src/bin/fig07_pruning_rate.rs:
