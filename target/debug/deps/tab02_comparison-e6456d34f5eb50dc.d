/root/repo/target/debug/deps/tab02_comparison-e6456d34f5eb50dc.d: crates/bench/src/bin/tab02_comparison.rs

/root/repo/target/debug/deps/libtab02_comparison-e6456d34f5eb50dc.rmeta: crates/bench/src/bin/tab02_comparison.rs

crates/bench/src/bin/tab02_comparison.rs:
