/root/repo/target/debug/deps/abl01_lambda_sweep-8901127b35bf887f.d: crates/bench/src/bin/abl01_lambda_sweep.rs

/root/repo/target/debug/deps/libabl01_lambda_sweep-8901127b35bf887f.rmeta: crates/bench/src/bin/abl01_lambda_sweep.rs

crates/bench/src/bin/abl01_lambda_sweep.rs:
