/root/repo/target/debug/deps/simulator-1e2c896eec140c14.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/libsimulator-1e2c896eec140c14.rmeta: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
