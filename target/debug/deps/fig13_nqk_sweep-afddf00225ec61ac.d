/root/repo/target/debug/deps/fig13_nqk_sweep-afddf00225ec61ac.d: crates/bench/src/bin/fig13_nqk_sweep.rs

/root/repo/target/debug/deps/libfig13_nqk_sweep-afddf00225ec61ac.rmeta: crates/bench/src/bin/fig13_nqk_sweep.rs

crates/bench/src/bin/fig13_nqk_sweep.rs:
