/root/repo/target/debug/deps/fig13_nqk_sweep-61162a6566e276b6.d: crates/bench/src/bin/fig13_nqk_sweep.rs

/root/repo/target/debug/deps/fig13_nqk_sweep-61162a6566e276b6: crates/bench/src/bin/fig13_nqk_sweep.rs

crates/bench/src/bin/fig13_nqk_sweep.rs:
