/root/repo/target/debug/deps/leopard-66fd91f85666f5c2.d: src/bin/leopard.rs

/root/repo/target/debug/deps/leopard-66fd91f85666f5c2: src/bin/leopard.rs

src/bin/leopard.rs:
