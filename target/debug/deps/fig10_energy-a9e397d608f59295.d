/root/repo/target/debug/deps/fig10_energy-a9e397d608f59295.d: crates/bench/src/bin/fig10_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_energy-a9e397d608f59295.rmeta: crates/bench/src/bin/fig10_energy.rs Cargo.toml

crates/bench/src/bin/fig10_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
