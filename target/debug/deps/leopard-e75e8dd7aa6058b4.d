/root/repo/target/debug/deps/leopard-e75e8dd7aa6058b4.d: src/lib.rs

/root/repo/target/debug/deps/leopard-e75e8dd7aa6058b4: src/lib.rs

src/lib.rs:
