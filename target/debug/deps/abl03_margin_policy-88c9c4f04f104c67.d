/root/repo/target/debug/deps/abl03_margin_policy-88c9c4f04f104c67.d: crates/bench/src/bin/abl03_margin_policy.rs

/root/repo/target/debug/deps/libabl03_margin_policy-88c9c4f04f104c67.rmeta: crates/bench/src/bin/abl03_margin_policy.rs

crates/bench/src/bin/abl03_margin_policy.rs:
