/root/repo/target/debug/deps/fig10_energy-86c461d903fd487d.d: crates/bench/src/bin/fig10_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_energy-86c461d903fd487d.rmeta: crates/bench/src/bin/fig10_energy.rs Cargo.toml

crates/bench/src/bin/fig10_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
