/root/repo/target/debug/deps/leopard-0626e873bfe851de.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libleopard-0626e873bfe851de.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
