/root/repo/target/debug/deps/fig13_nqk_sweep-7c0b57522630215c.d: crates/bench/src/bin/fig13_nqk_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_nqk_sweep-7c0b57522630215c.rmeta: crates/bench/src/bin/fig13_nqk_sweep.rs Cargo.toml

crates/bench/src/bin/fig13_nqk_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
