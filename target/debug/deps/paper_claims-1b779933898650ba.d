/root/repo/target/debug/deps/paper_claims-1b779933898650ba.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-1b779933898650ba: tests/paper_claims.rs

tests/paper_claims.rs:
