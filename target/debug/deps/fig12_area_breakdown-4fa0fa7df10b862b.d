/root/repo/target/debug/deps/fig12_area_breakdown-4fa0fa7df10b862b.d: crates/bench/src/bin/fig12_area_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_area_breakdown-4fa0fa7df10b862b.rmeta: crates/bench/src/bin/fig12_area_breakdown.rs Cargo.toml

crates/bench/src/bin/fig12_area_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
