/root/repo/target/debug/deps/leopard_quant-261c1eccbfdd21e1.d: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs

/root/repo/target/debug/deps/leopard_quant-261c1eccbfdd21e1: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs

crates/quant/src/lib.rs:
crates/quant/src/bitserial.rs:
crates/quant/src/fixed.rs:
crates/quant/src/signmag.rs:
