/root/repo/target/debug/deps/fig09_speedup-6501d6f7b4c60b32.d: crates/bench/src/bin/fig09_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_speedup-6501d6f7b4c60b32.rmeta: crates/bench/src/bin/fig09_speedup.rs Cargo.toml

crates/bench/src/bin/fig09_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
