/root/repo/target/debug/deps/abl03_margin_policy-883a25c8c34bb333.d: crates/bench/src/bin/abl03_margin_policy.rs Cargo.toml

/root/repo/target/debug/deps/libabl03_margin_policy-883a25c8c34bb333.rmeta: crates/bench/src/bin/abl03_margin_policy.rs Cargo.toml

crates/bench/src/bin/abl03_margin_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
