/root/repo/target/debug/deps/determinism-9045cc7db737fbfe.d: crates/runtime/tests/determinism.rs

/root/repo/target/debug/deps/libdeterminism-9045cc7db737fbfe.rmeta: crates/runtime/tests/determinism.rs

crates/runtime/tests/determinism.rs:
