/root/repo/target/debug/deps/fig11_energy_breakdown-8d226c7f29af0e68.d: crates/bench/src/bin/fig11_energy_breakdown.rs

/root/repo/target/debug/deps/libfig11_energy_breakdown-8d226c7f29af0e68.rmeta: crates/bench/src/bin/fig11_energy_breakdown.rs

crates/bench/src/bin/fig11_energy_breakdown.rs:
