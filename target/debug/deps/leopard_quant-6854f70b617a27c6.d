/root/repo/target/debug/deps/leopard_quant-6854f70b617a27c6.d: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs

/root/repo/target/debug/deps/libleopard_quant-6854f70b617a27c6.rlib: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs

/root/repo/target/debug/deps/libleopard_quant-6854f70b617a27c6.rmeta: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs

crates/quant/src/lib.rs:
crates/quant/src/bitserial.rs:
crates/quant/src/fixed.rs:
crates/quant/src/signmag.rs:
