/root/repo/target/debug/deps/fig02_finetune_dynamics-2c3c3edba72fa946.d: crates/bench/src/bin/fig02_finetune_dynamics.rs

/root/repo/target/debug/deps/libfig02_finetune_dynamics-2c3c3edba72fa946.rmeta: crates/bench/src/bin/fig02_finetune_dynamics.rs

crates/bench/src/bin/fig02_finetune_dynamics.rs:
