/root/repo/target/debug/deps/fig13_nqk_sweep-04ae274cc53a41b9.d: crates/bench/src/bin/fig13_nqk_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_nqk_sweep-04ae274cc53a41b9.rmeta: crates/bench/src/bin/fig13_nqk_sweep.rs Cargo.toml

crates/bench/src/bin/fig13_nqk_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
