/root/repo/target/debug/deps/fig14_granularity_sweep-e6c164572b2a0397.d: crates/bench/src/bin/fig14_granularity_sweep.rs

/root/repo/target/debug/deps/fig14_granularity_sweep-e6c164572b2a0397: crates/bench/src/bin/fig14_granularity_sweep.rs

crates/bench/src/bin/fig14_granularity_sweep.rs:
