/root/repo/target/debug/deps/determinism-18e53450c70c7bcc.d: crates/runtime/tests/determinism.rs

/root/repo/target/debug/deps/determinism-18e53450c70c7bcc: crates/runtime/tests/determinism.rs

crates/runtime/tests/determinism.rs:
