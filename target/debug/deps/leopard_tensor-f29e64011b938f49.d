/root/repo/target/debug/deps/leopard_tensor-f29e64011b938f49.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/libleopard_tensor-f29e64011b938f49.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
