/root/repo/target/debug/deps/fig10_energy-c2eb664fd969fd4c.d: crates/bench/src/bin/fig10_energy.rs

/root/repo/target/debug/deps/libfig10_energy-c2eb664fd969fd4c.rmeta: crates/bench/src/bin/fig10_energy.rs

crates/bench/src/bin/fig10_energy.rs:
