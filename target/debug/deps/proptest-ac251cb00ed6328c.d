/root/repo/target/debug/deps/proptest-ac251cb00ed6328c.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-ac251cb00ed6328c: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
