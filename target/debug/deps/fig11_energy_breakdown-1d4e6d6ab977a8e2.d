/root/repo/target/debug/deps/fig11_energy_breakdown-1d4e6d6ab977a8e2.d: crates/bench/src/bin/fig11_energy_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_energy_breakdown-1d4e6d6ab977a8e2.rmeta: crates/bench/src/bin/fig11_energy_breakdown.rs Cargo.toml

crates/bench/src/bin/fig11_energy_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
