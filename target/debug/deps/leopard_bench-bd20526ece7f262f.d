/root/repo/target/debug/deps/leopard_bench-bd20526ece7f262f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libleopard_bench-bd20526ece7f262f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
