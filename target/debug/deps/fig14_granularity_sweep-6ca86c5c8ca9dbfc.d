/root/repo/target/debug/deps/fig14_granularity_sweep-6ca86c5c8ca9dbfc.d: crates/bench/src/bin/fig14_granularity_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_granularity_sweep-6ca86c5c8ca9dbfc.rmeta: crates/bench/src/bin/fig14_granularity_sweep.rs Cargo.toml

crates/bench/src/bin/fig14_granularity_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
