/root/repo/target/debug/deps/tab02_comparison-273f79dd6f34159e.d: crates/bench/src/bin/tab02_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libtab02_comparison-273f79dd6f34159e.rmeta: crates/bench/src/bin/tab02_comparison.rs Cargo.toml

crates/bench/src/bin/tab02_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
