/root/repo/target/debug/deps/rand-bfee8332bbd5be67.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/rand-bfee8332bbd5be67: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
