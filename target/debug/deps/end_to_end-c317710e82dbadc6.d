/root/repo/target/debug/deps/end_to_end-c317710e82dbadc6.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c317710e82dbadc6: tests/end_to_end.rs

tests/end_to_end.rs:
