/root/repo/target/debug/deps/leopard_accel-29dd6f5e4c0fadad.d: crates/accel/src/lib.rs crates/accel/src/area.rs crates/accel/src/baseline.rs crates/accel/src/compare.rs crates/accel/src/config.rs crates/accel/src/cost.rs crates/accel/src/dpu.rs crates/accel/src/energy.rs crates/accel/src/schedule.rs crates/accel/src/sim.rs crates/accel/src/softmax.rs

/root/repo/target/debug/deps/libleopard_accel-29dd6f5e4c0fadad.rmeta: crates/accel/src/lib.rs crates/accel/src/area.rs crates/accel/src/baseline.rs crates/accel/src/compare.rs crates/accel/src/config.rs crates/accel/src/cost.rs crates/accel/src/dpu.rs crates/accel/src/energy.rs crates/accel/src/schedule.rs crates/accel/src/sim.rs crates/accel/src/softmax.rs

crates/accel/src/lib.rs:
crates/accel/src/area.rs:
crates/accel/src/baseline.rs:
crates/accel/src/compare.rs:
crates/accel/src/config.rs:
crates/accel/src/cost.rs:
crates/accel/src/dpu.rs:
crates/accel/src/energy.rs:
crates/accel/src/schedule.rs:
crates/accel/src/sim.rs:
crates/accel/src/softmax.rs:
