/root/repo/target/debug/deps/leopard_workloads-049348de143cea0b.d: crates/workloads/src/lib.rs crates/workloads/src/pipeline.rs crates/workloads/src/report.rs crates/workloads/src/suite.rs crates/workloads/src/training.rs Cargo.toml

/root/repo/target/debug/deps/libleopard_workloads-049348de143cea0b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/pipeline.rs crates/workloads/src/report.rs crates/workloads/src/suite.rs crates/workloads/src/training.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/pipeline.rs:
crates/workloads/src/report.rs:
crates/workloads/src/suite.rs:
crates/workloads/src/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
