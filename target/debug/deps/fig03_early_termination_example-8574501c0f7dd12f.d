/root/repo/target/debug/deps/fig03_early_termination_example-8574501c0f7dd12f.d: crates/bench/src/bin/fig03_early_termination_example.rs

/root/repo/target/debug/deps/libfig03_early_termination_example-8574501c0f7dd12f.rmeta: crates/bench/src/bin/fig03_early_termination_example.rs

crates/bench/src/bin/fig03_early_termination_example.rs:
