/root/repo/target/debug/deps/serde_derive-b9de443de1c0dccf.d: crates/serde/derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-b9de443de1c0dccf.so: crates/serde/derive/src/lib.rs

crates/serde/derive/src/lib.rs:
