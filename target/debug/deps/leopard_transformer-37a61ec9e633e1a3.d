/root/repo/target/debug/deps/leopard_transformer-37a61ec9e633e1a3.d: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/config.rs crates/transformer/src/data.rs crates/transformer/src/hooks.rs crates/transformer/src/mask.rs crates/transformer/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libleopard_transformer-37a61ec9e633e1a3.rmeta: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/config.rs crates/transformer/src/data.rs crates/transformer/src/hooks.rs crates/transformer/src/mask.rs crates/transformer/src/model.rs Cargo.toml

crates/transformer/src/lib.rs:
crates/transformer/src/attention.rs:
crates/transformer/src/config.rs:
crates/transformer/src/data.rs:
crates/transformer/src/hooks.rs:
crates/transformer/src/mask.rs:
crates/transformer/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
