/root/repo/target/debug/deps/leopard-6de425fb8ef77a5b.d: src/bin/leopard.rs

/root/repo/target/debug/deps/libleopard-6de425fb8ef77a5b.rmeta: src/bin/leopard.rs

src/bin/leopard.rs:
