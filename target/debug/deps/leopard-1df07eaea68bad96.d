/root/repo/target/debug/deps/leopard-1df07eaea68bad96.d: crates/runtime/src/bin/leopard.rs

/root/repo/target/debug/deps/libleopard-1df07eaea68bad96.rmeta: crates/runtime/src/bin/leopard.rs

crates/runtime/src/bin/leopard.rs:
