/root/repo/target/debug/deps/serde_derive-b5d82bac9e4a8be7.d: crates/serde/derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-b5d82bac9e4a8be7.so: crates/serde/derive/src/lib.rs Cargo.toml

crates/serde/derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
