/root/repo/target/debug/deps/kernels-5424d317ac307025.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/libkernels-5424d317ac307025.rmeta: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
