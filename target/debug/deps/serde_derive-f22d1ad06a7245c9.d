/root/repo/target/debug/deps/serde_derive-f22d1ad06a7245c9.d: crates/serde/derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-f22d1ad06a7245c9.rmeta: crates/serde/derive/src/lib.rs Cargo.toml

crates/serde/derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
