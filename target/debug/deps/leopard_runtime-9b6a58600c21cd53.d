/root/repo/target/debug/deps/leopard_runtime-9b6a58600c21cd53.d: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/cli.rs crates/runtime/src/engine.rs crates/runtime/src/pool.rs crates/runtime/src/report.rs

/root/repo/target/debug/deps/libleopard_runtime-9b6a58600c21cd53.rlib: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/cli.rs crates/runtime/src/engine.rs crates/runtime/src/pool.rs crates/runtime/src/report.rs

/root/repo/target/debug/deps/libleopard_runtime-9b6a58600c21cd53.rmeta: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/cli.rs crates/runtime/src/engine.rs crates/runtime/src/pool.rs crates/runtime/src/report.rs

crates/runtime/src/lib.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/cli.rs:
crates/runtime/src/engine.rs:
crates/runtime/src/pool.rs:
crates/runtime/src/report.rs:
