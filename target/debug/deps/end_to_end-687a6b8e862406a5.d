/root/repo/target/debug/deps/end_to_end-687a6b8e862406a5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-687a6b8e862406a5.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
