/root/repo/target/debug/deps/serde_derive-ecfc9cb68fbd9d41.d: crates/serde/derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-ecfc9cb68fbd9d41.rmeta: crates/serde/derive/src/lib.rs

crates/serde/derive/src/lib.rs:
