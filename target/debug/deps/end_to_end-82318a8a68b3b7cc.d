/root/repo/target/debug/deps/end_to_end-82318a8a68b3b7cc.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-82318a8a68b3b7cc: tests/end_to_end.rs

tests/end_to_end.rs:
