/root/repo/target/debug/deps/leopard_tensor-b6794e23cc9dd26d.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libleopard_tensor-b6794e23cc9dd26d.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
