/root/repo/target/debug/deps/leopard_workloads-23e8edc7edf0cd3c.d: crates/workloads/src/lib.rs crates/workloads/src/pipeline.rs crates/workloads/src/report.rs crates/workloads/src/suite.rs crates/workloads/src/training.rs

/root/repo/target/debug/deps/libleopard_workloads-23e8edc7edf0cd3c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/pipeline.rs crates/workloads/src/report.rs crates/workloads/src/suite.rs crates/workloads/src/training.rs

crates/workloads/src/lib.rs:
crates/workloads/src/pipeline.rs:
crates/workloads/src/report.rs:
crates/workloads/src/suite.rs:
crates/workloads/src/training.rs:
