/root/repo/target/debug/deps/fig06_accuracy-1518d75f8d84d187.d: crates/bench/src/bin/fig06_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_accuracy-1518d75f8d84d187.rmeta: crates/bench/src/bin/fig06_accuracy.rs Cargo.toml

crates/bench/src/bin/fig06_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
