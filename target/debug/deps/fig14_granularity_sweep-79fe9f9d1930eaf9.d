/root/repo/target/debug/deps/fig14_granularity_sweep-79fe9f9d1930eaf9.d: crates/bench/src/bin/fig14_granularity_sweep.rs

/root/repo/target/debug/deps/libfig14_granularity_sweep-79fe9f9d1930eaf9.rmeta: crates/bench/src/bin/fig14_granularity_sweep.rs

crates/bench/src/bin/fig14_granularity_sweep.rs:
