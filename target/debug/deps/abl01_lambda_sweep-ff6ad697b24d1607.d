/root/repo/target/debug/deps/abl01_lambda_sweep-ff6ad697b24d1607.d: crates/bench/src/bin/abl01_lambda_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libabl01_lambda_sweep-ff6ad697b24d1607.rmeta: crates/bench/src/bin/abl01_lambda_sweep.rs Cargo.toml

crates/bench/src/bin/abl01_lambda_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
