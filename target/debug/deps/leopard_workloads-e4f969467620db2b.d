/root/repo/target/debug/deps/leopard_workloads-e4f969467620db2b.d: crates/workloads/src/lib.rs crates/workloads/src/pipeline.rs crates/workloads/src/report.rs crates/workloads/src/suite.rs crates/workloads/src/training.rs

/root/repo/target/debug/deps/libleopard_workloads-e4f969467620db2b.rlib: crates/workloads/src/lib.rs crates/workloads/src/pipeline.rs crates/workloads/src/report.rs crates/workloads/src/suite.rs crates/workloads/src/training.rs

/root/repo/target/debug/deps/libleopard_workloads-e4f969467620db2b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/pipeline.rs crates/workloads/src/report.rs crates/workloads/src/suite.rs crates/workloads/src/training.rs

crates/workloads/src/lib.rs:
crates/workloads/src/pipeline.rs:
crates/workloads/src/report.rs:
crates/workloads/src/suite.rs:
crates/workloads/src/training.rs:
