/root/repo/target/debug/deps/fig03_early_termination_example-67d20e614cee98cb.d: crates/bench/src/bin/fig03_early_termination_example.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_early_termination_example-67d20e614cee98cb.rmeta: crates/bench/src/bin/fig03_early_termination_example.rs Cargo.toml

crates/bench/src/bin/fig03_early_termination_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
