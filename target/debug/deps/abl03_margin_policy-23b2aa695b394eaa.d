/root/repo/target/debug/deps/abl03_margin_policy-23b2aa695b394eaa.d: crates/bench/src/bin/abl03_margin_policy.rs

/root/repo/target/debug/deps/libabl03_margin_policy-23b2aa695b394eaa.rmeta: crates/bench/src/bin/abl03_margin_policy.rs

crates/bench/src/bin/abl03_margin_policy.rs:
