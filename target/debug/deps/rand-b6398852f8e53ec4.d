/root/repo/target/debug/deps/rand-b6398852f8e53ec4.d: crates/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-b6398852f8e53ec4.rmeta: crates/rand/src/lib.rs Cargo.toml

crates/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
