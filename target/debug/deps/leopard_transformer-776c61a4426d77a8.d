/root/repo/target/debug/deps/leopard_transformer-776c61a4426d77a8.d: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/config.rs crates/transformer/src/data.rs crates/transformer/src/hooks.rs crates/transformer/src/mask.rs crates/transformer/src/model.rs

/root/repo/target/debug/deps/libleopard_transformer-776c61a4426d77a8.rlib: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/config.rs crates/transformer/src/data.rs crates/transformer/src/hooks.rs crates/transformer/src/mask.rs crates/transformer/src/model.rs

/root/repo/target/debug/deps/libleopard_transformer-776c61a4426d77a8.rmeta: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/config.rs crates/transformer/src/data.rs crates/transformer/src/hooks.rs crates/transformer/src/mask.rs crates/transformer/src/model.rs

crates/transformer/src/lib.rs:
crates/transformer/src/attention.rs:
crates/transformer/src/config.rs:
crates/transformer/src/data.rs:
crates/transformer/src/hooks.rs:
crates/transformer/src/mask.rs:
crates/transformer/src/model.rs:
