/root/repo/target/debug/deps/leopard_autodiff-b8a41bff93848265.d: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/ops.rs crates/autodiff/src/optim.rs crates/autodiff/src/tape.rs

/root/repo/target/debug/deps/leopard_autodiff-b8a41bff93848265: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/ops.rs crates/autodiff/src/optim.rs crates/autodiff/src/tape.rs

crates/autodiff/src/lib.rs:
crates/autodiff/src/gradcheck.rs:
crates/autodiff/src/ops.rs:
crates/autodiff/src/optim.rs:
crates/autodiff/src/tape.rs:
