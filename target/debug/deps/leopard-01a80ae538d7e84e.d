/root/repo/target/debug/deps/leopard-01a80ae538d7e84e.d: src/bin/leopard.rs

/root/repo/target/debug/deps/leopard-01a80ae538d7e84e: src/bin/leopard.rs

src/bin/leopard.rs:
