/root/repo/target/debug/deps/abl02_sharpness_sweep-1472941dfeb403a9.d: crates/bench/src/bin/abl02_sharpness_sweep.rs

/root/repo/target/debug/deps/abl02_sharpness_sweep-1472941dfeb403a9: crates/bench/src/bin/abl02_sharpness_sweep.rs

crates/bench/src/bin/abl02_sharpness_sweep.rs:
