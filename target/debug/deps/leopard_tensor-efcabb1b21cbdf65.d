/root/repo/target/debug/deps/leopard_tensor-efcabb1b21cbdf65.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/leopard_tensor-efcabb1b21cbdf65: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
