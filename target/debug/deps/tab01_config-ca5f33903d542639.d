/root/repo/target/debug/deps/tab01_config-ca5f33903d542639.d: crates/bench/src/bin/tab01_config.rs

/root/repo/target/debug/deps/libtab01_config-ca5f33903d542639.rmeta: crates/bench/src/bin/tab01_config.rs

crates/bench/src/bin/tab01_config.rs:
