/root/repo/target/debug/deps/leopard_workloads-9be1a0c34312e35a.d: crates/workloads/src/lib.rs crates/workloads/src/pipeline.rs crates/workloads/src/report.rs crates/workloads/src/suite.rs crates/workloads/src/training.rs

/root/repo/target/debug/deps/leopard_workloads-9be1a0c34312e35a: crates/workloads/src/lib.rs crates/workloads/src/pipeline.rs crates/workloads/src/report.rs crates/workloads/src/suite.rs crates/workloads/src/training.rs

crates/workloads/src/lib.rs:
crates/workloads/src/pipeline.rs:
crates/workloads/src/report.rs:
crates/workloads/src/suite.rs:
crates/workloads/src/training.rs:
