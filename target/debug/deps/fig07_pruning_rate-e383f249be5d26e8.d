/root/repo/target/debug/deps/fig07_pruning_rate-e383f249be5d26e8.d: crates/bench/src/bin/fig07_pruning_rate.rs

/root/repo/target/debug/deps/libfig07_pruning_rate-e383f249be5d26e8.rmeta: crates/bench/src/bin/fig07_pruning_rate.rs

crates/bench/src/bin/fig07_pruning_rate.rs:
