/root/repo/target/debug/deps/attention-5a3502143fee929f.d: crates/bench/benches/attention.rs

/root/repo/target/debug/deps/libattention-5a3502143fee929f.rmeta: crates/bench/benches/attention.rs

crates/bench/benches/attention.rs:
