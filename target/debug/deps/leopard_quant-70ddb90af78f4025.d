/root/repo/target/debug/deps/leopard_quant-70ddb90af78f4025.d: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs Cargo.toml

/root/repo/target/debug/deps/libleopard_quant-70ddb90af78f4025.rmeta: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs Cargo.toml

crates/quant/src/lib.rs:
crates/quant/src/bitserial.rs:
crates/quant/src/fixed.rs:
crates/quant/src/signmag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
