/root/repo/target/debug/deps/leopard_quant-8fd5afacbeabf535.d: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs

/root/repo/target/debug/deps/libleopard_quant-8fd5afacbeabf535.rmeta: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs

crates/quant/src/lib.rs:
crates/quant/src/bitserial.rs:
crates/quant/src/fixed.rs:
crates/quant/src/signmag.rs:
