/root/repo/target/debug/deps/leopard_core-be944c382962f1ce.d: crates/core/src/lib.rs crates/core/src/finetune.rs crates/core/src/hooks.rs crates/core/src/regularizer.rs crates/core/src/soft_threshold.rs crates/core/src/stats.rs crates/core/src/thresholds.rs Cargo.toml

/root/repo/target/debug/deps/libleopard_core-be944c382962f1ce.rmeta: crates/core/src/lib.rs crates/core/src/finetune.rs crates/core/src/hooks.rs crates/core/src/regularizer.rs crates/core/src/soft_threshold.rs crates/core/src/stats.rs crates/core/src/thresholds.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/finetune.rs:
crates/core/src/hooks.rs:
crates/core/src/regularizer.rs:
crates/core/src/soft_threshold.rs:
crates/core/src/stats.rs:
crates/core/src/thresholds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
