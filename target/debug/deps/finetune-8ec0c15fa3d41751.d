/root/repo/target/debug/deps/finetune-8ec0c15fa3d41751.d: crates/bench/benches/finetune.rs

/root/repo/target/debug/deps/libfinetune-8ec0c15fa3d41751.rmeta: crates/bench/benches/finetune.rs

crates/bench/benches/finetune.rs:
