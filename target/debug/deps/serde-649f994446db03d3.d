/root/repo/target/debug/deps/serde-649f994446db03d3.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-649f994446db03d3.rlib: crates/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-649f994446db03d3.rmeta: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
