/root/repo/target/debug/deps/fig14_granularity_sweep-f0b10237120bd0a3.d: crates/bench/src/bin/fig14_granularity_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_granularity_sweep-f0b10237120bd0a3.rmeta: crates/bench/src/bin/fig14_granularity_sweep.rs Cargo.toml

crates/bench/src/bin/fig14_granularity_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
