/root/repo/target/debug/deps/fig08_bit_cumulative-ad2f9141279de7d5.d: crates/bench/src/bin/fig08_bit_cumulative.rs

/root/repo/target/debug/deps/libfig08_bit_cumulative-ad2f9141279de7d5.rmeta: crates/bench/src/bin/fig08_bit_cumulative.rs

crates/bench/src/bin/fig08_bit_cumulative.rs:
