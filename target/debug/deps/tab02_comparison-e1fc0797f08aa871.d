/root/repo/target/debug/deps/tab02_comparison-e1fc0797f08aa871.d: crates/bench/src/bin/tab02_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libtab02_comparison-e1fc0797f08aa871.rmeta: crates/bench/src/bin/tab02_comparison.rs Cargo.toml

crates/bench/src/bin/tab02_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
