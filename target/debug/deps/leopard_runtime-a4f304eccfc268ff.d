/root/repo/target/debug/deps/leopard_runtime-a4f304eccfc268ff.d: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/cli.rs crates/runtime/src/engine.rs crates/runtime/src/pool.rs crates/runtime/src/report.rs

/root/repo/target/debug/deps/leopard_runtime-a4f304eccfc268ff: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/cli.rs crates/runtime/src/engine.rs crates/runtime/src/pool.rs crates/runtime/src/report.rs

crates/runtime/src/lib.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/cli.rs:
crates/runtime/src/engine.rs:
crates/runtime/src/pool.rs:
crates/runtime/src/report.rs:
