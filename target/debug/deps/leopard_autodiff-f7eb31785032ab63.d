/root/repo/target/debug/deps/leopard_autodiff-f7eb31785032ab63.d: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/ops.rs crates/autodiff/src/optim.rs crates/autodiff/src/tape.rs Cargo.toml

/root/repo/target/debug/deps/libleopard_autodiff-f7eb31785032ab63.rmeta: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/ops.rs crates/autodiff/src/optim.rs crates/autodiff/src/tape.rs Cargo.toml

crates/autodiff/src/lib.rs:
crates/autodiff/src/gradcheck.rs:
crates/autodiff/src/ops.rs:
crates/autodiff/src/optim.rs:
crates/autodiff/src/tape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
