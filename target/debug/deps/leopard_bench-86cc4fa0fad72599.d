/root/repo/target/debug/deps/leopard_bench-86cc4fa0fad72599.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libleopard_bench-86cc4fa0fad72599.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libleopard_bench-86cc4fa0fad72599.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
