/root/repo/target/debug/deps/fig06_accuracy-53c19ccc82ed7b22.d: crates/bench/src/bin/fig06_accuracy.rs

/root/repo/target/debug/deps/libfig06_accuracy-53c19ccc82ed7b22.rmeta: crates/bench/src/bin/fig06_accuracy.rs

crates/bench/src/bin/fig06_accuracy.rs:
