/root/repo/target/debug/deps/tab02_comparison-cdb0fec1edde997e.d: crates/bench/src/bin/tab02_comparison.rs

/root/repo/target/debug/deps/tab02_comparison-cdb0fec1edde997e: crates/bench/src/bin/tab02_comparison.rs

crates/bench/src/bin/tab02_comparison.rs:
