/root/repo/target/debug/deps/fig09_speedup-969160472089b583.d: crates/bench/src/bin/fig09_speedup.rs

/root/repo/target/debug/deps/fig09_speedup-969160472089b583: crates/bench/src/bin/fig09_speedup.rs

crates/bench/src/bin/fig09_speedup.rs:
