/root/repo/target/debug/deps/paper_claims-dea298ee16ec798f.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-dea298ee16ec798f: tests/paper_claims.rs

tests/paper_claims.rs:
