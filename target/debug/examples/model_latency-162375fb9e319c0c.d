/root/repo/target/debug/examples/model_latency-162375fb9e319c0c.d: examples/model_latency.rs

/root/repo/target/debug/examples/model_latency-162375fb9e319c0c: examples/model_latency.rs

examples/model_latency.rs:
