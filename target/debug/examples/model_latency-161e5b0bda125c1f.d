/root/repo/target/debug/examples/model_latency-161e5b0bda125c1f.d: examples/model_latency.rs Cargo.toml

/root/repo/target/debug/examples/libmodel_latency-161e5b0bda125c1f.rmeta: examples/model_latency.rs Cargo.toml

examples/model_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
