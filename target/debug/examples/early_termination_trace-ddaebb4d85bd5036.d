/root/repo/target/debug/examples/early_termination_trace-ddaebb4d85bd5036.d: examples/early_termination_trace.rs

/root/repo/target/debug/examples/libearly_termination_trace-ddaebb4d85bd5036.rmeta: examples/early_termination_trace.rs

examples/early_termination_trace.rs:
