/root/repo/target/debug/examples/early_termination_trace-8bdb75157d971310.d: examples/early_termination_trace.rs

/root/repo/target/debug/examples/early_termination_trace-8bdb75157d971310: examples/early_termination_trace.rs

examples/early_termination_trace.rs:
