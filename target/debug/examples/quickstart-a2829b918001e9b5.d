/root/repo/target/debug/examples/quickstart-a2829b918001e9b5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a2829b918001e9b5: examples/quickstart.rs

examples/quickstart.rs:
