/root/repo/target/debug/examples/model_latency-b3fc7cccf7bb7444.d: examples/model_latency.rs Cargo.toml

/root/repo/target/debug/examples/libmodel_latency-b3fc7cccf7bb7444.rmeta: examples/model_latency.rs Cargo.toml

examples/model_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
