/root/repo/target/debug/examples/suite_sweep-3d08e804f721fd2c.d: examples/suite_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libsuite_sweep-3d08e804f721fd2c.rmeta: examples/suite_sweep.rs Cargo.toml

examples/suite_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
