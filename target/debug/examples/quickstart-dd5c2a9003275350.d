/root/repo/target/debug/examples/quickstart-dd5c2a9003275350.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-dd5c2a9003275350.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
