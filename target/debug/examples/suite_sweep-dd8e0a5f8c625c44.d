/root/repo/target/debug/examples/suite_sweep-dd8e0a5f8c625c44.d: examples/suite_sweep.rs

/root/repo/target/debug/examples/suite_sweep-dd8e0a5f8c625c44: examples/suite_sweep.rs

examples/suite_sweep.rs:
