/root/repo/target/debug/examples/suite_sweep-c9fcc1dec6d65689.d: examples/suite_sweep.rs

/root/repo/target/debug/examples/suite_sweep-c9fcc1dec6d65689: examples/suite_sweep.rs

examples/suite_sweep.rs:
