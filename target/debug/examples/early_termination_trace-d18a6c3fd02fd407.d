/root/repo/target/debug/examples/early_termination_trace-d18a6c3fd02fd407.d: examples/early_termination_trace.rs

/root/repo/target/debug/examples/early_termination_trace-d18a6c3fd02fd407: examples/early_termination_trace.rs

examples/early_termination_trace.rs:
