/root/repo/target/debug/examples/early_termination_trace-1fa71b3b56f91619.d: examples/early_termination_trace.rs Cargo.toml

/root/repo/target/debug/examples/libearly_termination_trace-1fa71b3b56f91619.rmeta: examples/early_termination_trace.rs Cargo.toml

examples/early_termination_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
