/root/repo/target/debug/examples/threshold_learning-f336fcd314daf5f2.d: examples/threshold_learning.rs

/root/repo/target/debug/examples/threshold_learning-f336fcd314daf5f2: examples/threshold_learning.rs

examples/threshold_learning.rs:
