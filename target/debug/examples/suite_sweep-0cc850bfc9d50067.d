/root/repo/target/debug/examples/suite_sweep-0cc850bfc9d50067.d: examples/suite_sweep.rs

/root/repo/target/debug/examples/libsuite_sweep-0cc850bfc9d50067.rmeta: examples/suite_sweep.rs

examples/suite_sweep.rs:
