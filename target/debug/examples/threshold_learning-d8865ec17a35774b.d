/root/repo/target/debug/examples/threshold_learning-d8865ec17a35774b.d: examples/threshold_learning.rs Cargo.toml

/root/repo/target/debug/examples/libthreshold_learning-d8865ec17a35774b.rmeta: examples/threshold_learning.rs Cargo.toml

examples/threshold_learning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
