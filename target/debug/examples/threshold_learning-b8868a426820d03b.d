/root/repo/target/debug/examples/threshold_learning-b8868a426820d03b.d: examples/threshold_learning.rs

/root/repo/target/debug/examples/threshold_learning-b8868a426820d03b: examples/threshold_learning.rs

examples/threshold_learning.rs:
