/root/repo/target/debug/examples/model_latency-f43b8907ae3f08a4.d: examples/model_latency.rs

/root/repo/target/debug/examples/libmodel_latency-f43b8907ae3f08a4.rmeta: examples/model_latency.rs

examples/model_latency.rs:
