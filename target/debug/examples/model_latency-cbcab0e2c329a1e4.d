/root/repo/target/debug/examples/model_latency-cbcab0e2c329a1e4.d: examples/model_latency.rs

/root/repo/target/debug/examples/model_latency-cbcab0e2c329a1e4: examples/model_latency.rs

examples/model_latency.rs:
