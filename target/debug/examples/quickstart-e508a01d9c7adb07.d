/root/repo/target/debug/examples/quickstart-e508a01d9c7adb07.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e508a01d9c7adb07: examples/quickstart.rs

examples/quickstart.rs:
