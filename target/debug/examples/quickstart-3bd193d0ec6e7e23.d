/root/repo/target/debug/examples/quickstart-3bd193d0ec6e7e23.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-3bd193d0ec6e7e23.rmeta: examples/quickstart.rs

examples/quickstart.rs:
