/root/repo/target/debug/examples/threshold_learning-b8476c2904fe3e1a.d: examples/threshold_learning.rs

/root/repo/target/debug/examples/libthreshold_learning-b8476c2904fe3e1a.rmeta: examples/threshold_learning.rs

examples/threshold_learning.rs:
