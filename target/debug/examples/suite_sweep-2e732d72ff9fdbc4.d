/root/repo/target/debug/examples/suite_sweep-2e732d72ff9fdbc4.d: examples/suite_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libsuite_sweep-2e732d72ff9fdbc4.rmeta: examples/suite_sweep.rs Cargo.toml

examples/suite_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
