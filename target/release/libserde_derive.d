/root/repo/target/release/libserde_derive.so: /root/repo/crates/serde/derive/src/lib.rs
