/root/repo/target/release/deps/fig03_early_termination_example-b4be8cdc5646ac82.d: crates/bench/src/bin/fig03_early_termination_example.rs

/root/repo/target/release/deps/fig03_early_termination_example-b4be8cdc5646ac82: crates/bench/src/bin/fig03_early_termination_example.rs

crates/bench/src/bin/fig03_early_termination_example.rs:
