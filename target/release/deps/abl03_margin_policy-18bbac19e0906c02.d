/root/repo/target/release/deps/abl03_margin_policy-18bbac19e0906c02.d: crates/bench/src/bin/abl03_margin_policy.rs

/root/repo/target/release/deps/abl03_margin_policy-18bbac19e0906c02: crates/bench/src/bin/abl03_margin_policy.rs

crates/bench/src/bin/abl03_margin_policy.rs:
