/root/repo/target/release/deps/fig09_speedup-278402939386e888.d: crates/bench/src/bin/fig09_speedup.rs

/root/repo/target/release/deps/fig09_speedup-278402939386e888: crates/bench/src/bin/fig09_speedup.rs

crates/bench/src/bin/fig09_speedup.rs:
