/root/repo/target/release/deps/leopard_transformer-21382745ad6ea4cb.d: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/config.rs crates/transformer/src/data.rs crates/transformer/src/hooks.rs crates/transformer/src/mask.rs crates/transformer/src/model.rs

/root/repo/target/release/deps/libleopard_transformer-21382745ad6ea4cb.rlib: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/config.rs crates/transformer/src/data.rs crates/transformer/src/hooks.rs crates/transformer/src/mask.rs crates/transformer/src/model.rs

/root/repo/target/release/deps/libleopard_transformer-21382745ad6ea4cb.rmeta: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/config.rs crates/transformer/src/data.rs crates/transformer/src/hooks.rs crates/transformer/src/mask.rs crates/transformer/src/model.rs

crates/transformer/src/lib.rs:
crates/transformer/src/attention.rs:
crates/transformer/src/config.rs:
crates/transformer/src/data.rs:
crates/transformer/src/hooks.rs:
crates/transformer/src/mask.rs:
crates/transformer/src/model.rs:
