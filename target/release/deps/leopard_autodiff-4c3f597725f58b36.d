/root/repo/target/release/deps/leopard_autodiff-4c3f597725f58b36.d: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/ops.rs crates/autodiff/src/optim.rs crates/autodiff/src/tape.rs

/root/repo/target/release/deps/libleopard_autodiff-4c3f597725f58b36.rlib: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/ops.rs crates/autodiff/src/optim.rs crates/autodiff/src/tape.rs

/root/repo/target/release/deps/libleopard_autodiff-4c3f597725f58b36.rmeta: crates/autodiff/src/lib.rs crates/autodiff/src/gradcheck.rs crates/autodiff/src/ops.rs crates/autodiff/src/optim.rs crates/autodiff/src/tape.rs

crates/autodiff/src/lib.rs:
crates/autodiff/src/gradcheck.rs:
crates/autodiff/src/ops.rs:
crates/autodiff/src/optim.rs:
crates/autodiff/src/tape.rs:
