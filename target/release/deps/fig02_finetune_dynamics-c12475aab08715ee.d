/root/repo/target/release/deps/fig02_finetune_dynamics-c12475aab08715ee.d: crates/bench/src/bin/fig02_finetune_dynamics.rs

/root/repo/target/release/deps/fig02_finetune_dynamics-c12475aab08715ee: crates/bench/src/bin/fig02_finetune_dynamics.rs

crates/bench/src/bin/fig02_finetune_dynamics.rs:
