/root/repo/target/release/deps/fig08_bit_cumulative-31e19af8e5fc6e1d.d: crates/bench/src/bin/fig08_bit_cumulative.rs

/root/repo/target/release/deps/fig08_bit_cumulative-31e19af8e5fc6e1d: crates/bench/src/bin/fig08_bit_cumulative.rs

crates/bench/src/bin/fig08_bit_cumulative.rs:
