/root/repo/target/release/deps/fig12_area_breakdown-c03e6822eaed6976.d: crates/bench/src/bin/fig12_area_breakdown.rs

/root/repo/target/release/deps/fig12_area_breakdown-c03e6822eaed6976: crates/bench/src/bin/fig12_area_breakdown.rs

crates/bench/src/bin/fig12_area_breakdown.rs:
