/root/repo/target/release/deps/fig14_granularity_sweep-79a22333bbfa533a.d: crates/bench/src/bin/fig14_granularity_sweep.rs

/root/repo/target/release/deps/fig14_granularity_sweep-79a22333bbfa533a: crates/bench/src/bin/fig14_granularity_sweep.rs

crates/bench/src/bin/fig14_granularity_sweep.rs:
