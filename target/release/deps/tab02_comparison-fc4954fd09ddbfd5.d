/root/repo/target/release/deps/tab02_comparison-fc4954fd09ddbfd5.d: crates/bench/src/bin/tab02_comparison.rs

/root/repo/target/release/deps/tab02_comparison-fc4954fd09ddbfd5: crates/bench/src/bin/tab02_comparison.rs

crates/bench/src/bin/tab02_comparison.rs:
