/root/repo/target/release/deps/serde_derive-d63357fa151dfcf5.d: crates/serde/derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-d63357fa151dfcf5.so: crates/serde/derive/src/lib.rs

crates/serde/derive/src/lib.rs:
