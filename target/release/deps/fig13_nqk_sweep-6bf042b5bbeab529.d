/root/repo/target/release/deps/fig13_nqk_sweep-6bf042b5bbeab529.d: crates/bench/src/bin/fig13_nqk_sweep.rs

/root/repo/target/release/deps/fig13_nqk_sweep-6bf042b5bbeab529: crates/bench/src/bin/fig13_nqk_sweep.rs

crates/bench/src/bin/fig13_nqk_sweep.rs:
