/root/repo/target/release/deps/leopard_workloads-6280ff4ac37a75fb.d: crates/workloads/src/lib.rs crates/workloads/src/pipeline.rs crates/workloads/src/report.rs crates/workloads/src/suite.rs crates/workloads/src/training.rs

/root/repo/target/release/deps/libleopard_workloads-6280ff4ac37a75fb.rlib: crates/workloads/src/lib.rs crates/workloads/src/pipeline.rs crates/workloads/src/report.rs crates/workloads/src/suite.rs crates/workloads/src/training.rs

/root/repo/target/release/deps/libleopard_workloads-6280ff4ac37a75fb.rmeta: crates/workloads/src/lib.rs crates/workloads/src/pipeline.rs crates/workloads/src/report.rs crates/workloads/src/suite.rs crates/workloads/src/training.rs

crates/workloads/src/lib.rs:
crates/workloads/src/pipeline.rs:
crates/workloads/src/report.rs:
crates/workloads/src/suite.rs:
crates/workloads/src/training.rs:
