/root/repo/target/release/deps/abl01_lambda_sweep-f43d197cd4e72d7a.d: crates/bench/src/bin/abl01_lambda_sweep.rs

/root/repo/target/release/deps/abl01_lambda_sweep-f43d197cd4e72d7a: crates/bench/src/bin/abl01_lambda_sweep.rs

crates/bench/src/bin/abl01_lambda_sweep.rs:
