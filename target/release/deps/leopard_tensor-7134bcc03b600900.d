/root/repo/target/release/deps/leopard_tensor-7134bcc03b600900.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/release/deps/libleopard_tensor-7134bcc03b600900.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/release/deps/libleopard_tensor-7134bcc03b600900.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
