/root/repo/target/release/deps/leopard_core-f45eca0f5387b76d.d: crates/core/src/lib.rs crates/core/src/finetune.rs crates/core/src/hooks.rs crates/core/src/regularizer.rs crates/core/src/soft_threshold.rs crates/core/src/stats.rs crates/core/src/thresholds.rs

/root/repo/target/release/deps/libleopard_core-f45eca0f5387b76d.rlib: crates/core/src/lib.rs crates/core/src/finetune.rs crates/core/src/hooks.rs crates/core/src/regularizer.rs crates/core/src/soft_threshold.rs crates/core/src/stats.rs crates/core/src/thresholds.rs

/root/repo/target/release/deps/libleopard_core-f45eca0f5387b76d.rmeta: crates/core/src/lib.rs crates/core/src/finetune.rs crates/core/src/hooks.rs crates/core/src/regularizer.rs crates/core/src/soft_threshold.rs crates/core/src/stats.rs crates/core/src/thresholds.rs

crates/core/src/lib.rs:
crates/core/src/finetune.rs:
crates/core/src/hooks.rs:
crates/core/src/regularizer.rs:
crates/core/src/soft_threshold.rs:
crates/core/src/stats.rs:
crates/core/src/thresholds.rs:
