/root/repo/target/release/deps/tab01_config-f9e186362277e679.d: crates/bench/src/bin/tab01_config.rs

/root/repo/target/release/deps/tab01_config-f9e186362277e679: crates/bench/src/bin/tab01_config.rs

crates/bench/src/bin/tab01_config.rs:
