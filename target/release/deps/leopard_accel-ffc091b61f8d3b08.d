/root/repo/target/release/deps/leopard_accel-ffc091b61f8d3b08.d: crates/accel/src/lib.rs crates/accel/src/area.rs crates/accel/src/baseline.rs crates/accel/src/compare.rs crates/accel/src/config.rs crates/accel/src/cost.rs crates/accel/src/dpu.rs crates/accel/src/energy.rs crates/accel/src/schedule.rs crates/accel/src/sim.rs crates/accel/src/softmax.rs

/root/repo/target/release/deps/libleopard_accel-ffc091b61f8d3b08.rlib: crates/accel/src/lib.rs crates/accel/src/area.rs crates/accel/src/baseline.rs crates/accel/src/compare.rs crates/accel/src/config.rs crates/accel/src/cost.rs crates/accel/src/dpu.rs crates/accel/src/energy.rs crates/accel/src/schedule.rs crates/accel/src/sim.rs crates/accel/src/softmax.rs

/root/repo/target/release/deps/libleopard_accel-ffc091b61f8d3b08.rmeta: crates/accel/src/lib.rs crates/accel/src/area.rs crates/accel/src/baseline.rs crates/accel/src/compare.rs crates/accel/src/config.rs crates/accel/src/cost.rs crates/accel/src/dpu.rs crates/accel/src/energy.rs crates/accel/src/schedule.rs crates/accel/src/sim.rs crates/accel/src/softmax.rs

crates/accel/src/lib.rs:
crates/accel/src/area.rs:
crates/accel/src/baseline.rs:
crates/accel/src/compare.rs:
crates/accel/src/config.rs:
crates/accel/src/cost.rs:
crates/accel/src/dpu.rs:
crates/accel/src/energy.rs:
crates/accel/src/schedule.rs:
crates/accel/src/sim.rs:
crates/accel/src/softmax.rs:
