/root/repo/target/release/deps/leopard_bench-d2c220b753d50d69.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libleopard_bench-d2c220b753d50d69.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libleopard_bench-d2c220b753d50d69.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
