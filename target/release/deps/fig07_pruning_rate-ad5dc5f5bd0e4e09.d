/root/repo/target/release/deps/fig07_pruning_rate-ad5dc5f5bd0e4e09.d: crates/bench/src/bin/fig07_pruning_rate.rs

/root/repo/target/release/deps/fig07_pruning_rate-ad5dc5f5bd0e4e09: crates/bench/src/bin/fig07_pruning_rate.rs

crates/bench/src/bin/fig07_pruning_rate.rs:
