/root/repo/target/release/deps/leopard-ba5eece340334803.d: src/lib.rs

/root/repo/target/release/deps/libleopard-ba5eece340334803.rlib: src/lib.rs

/root/repo/target/release/deps/libleopard-ba5eece340334803.rmeta: src/lib.rs

src/lib.rs:
