/root/repo/target/release/deps/proptest-4662f4948a3a0bab.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4662f4948a3a0bab.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4662f4948a3a0bab.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
