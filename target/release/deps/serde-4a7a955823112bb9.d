/root/repo/target/release/deps/serde-4a7a955823112bb9.d: crates/serde/src/lib.rs

/root/repo/target/release/deps/libserde-4a7a955823112bb9.rlib: crates/serde/src/lib.rs

/root/repo/target/release/deps/libserde-4a7a955823112bb9.rmeta: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
