/root/repo/target/release/deps/fig06_accuracy-d9bef40ba77e13b0.d: crates/bench/src/bin/fig06_accuracy.rs

/root/repo/target/release/deps/fig06_accuracy-d9bef40ba77e13b0: crates/bench/src/bin/fig06_accuracy.rs

crates/bench/src/bin/fig06_accuracy.rs:
