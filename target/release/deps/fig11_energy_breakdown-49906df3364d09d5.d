/root/repo/target/release/deps/fig11_energy_breakdown-49906df3364d09d5.d: crates/bench/src/bin/fig11_energy_breakdown.rs

/root/repo/target/release/deps/fig11_energy_breakdown-49906df3364d09d5: crates/bench/src/bin/fig11_energy_breakdown.rs

crates/bench/src/bin/fig11_energy_breakdown.rs:
