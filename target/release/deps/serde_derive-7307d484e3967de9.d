/root/repo/target/release/deps/serde_derive-7307d484e3967de9.d: crates/serde/derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-7307d484e3967de9.so: crates/serde/derive/src/lib.rs

crates/serde/derive/src/lib.rs:
