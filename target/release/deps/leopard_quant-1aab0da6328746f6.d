/root/repo/target/release/deps/leopard_quant-1aab0da6328746f6.d: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs

/root/repo/target/release/deps/libleopard_quant-1aab0da6328746f6.rlib: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs

/root/repo/target/release/deps/libleopard_quant-1aab0da6328746f6.rmeta: crates/quant/src/lib.rs crates/quant/src/bitserial.rs crates/quant/src/fixed.rs crates/quant/src/signmag.rs

crates/quant/src/lib.rs:
crates/quant/src/bitserial.rs:
crates/quant/src/fixed.rs:
crates/quant/src/signmag.rs:
