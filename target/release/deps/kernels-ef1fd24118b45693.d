/root/repo/target/release/deps/kernels-ef1fd24118b45693.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-ef1fd24118b45693: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
