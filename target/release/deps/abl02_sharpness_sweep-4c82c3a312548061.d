/root/repo/target/release/deps/abl02_sharpness_sweep-4c82c3a312548061.d: crates/bench/src/bin/abl02_sharpness_sweep.rs

/root/repo/target/release/deps/abl02_sharpness_sweep-4c82c3a312548061: crates/bench/src/bin/abl02_sharpness_sweep.rs

crates/bench/src/bin/abl02_sharpness_sweep.rs:
