/root/repo/target/release/deps/fig10_energy-de2341e4fb62f65c.d: crates/bench/src/bin/fig10_energy.rs

/root/repo/target/release/deps/fig10_energy-de2341e4fb62f65c: crates/bench/src/bin/fig10_energy.rs

crates/bench/src/bin/fig10_energy.rs:
