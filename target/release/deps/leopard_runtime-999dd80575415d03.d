/root/repo/target/release/deps/leopard_runtime-999dd80575415d03.d: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/cli.rs crates/runtime/src/engine.rs crates/runtime/src/pool.rs crates/runtime/src/report.rs

/root/repo/target/release/deps/libleopard_runtime-999dd80575415d03.rlib: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/cli.rs crates/runtime/src/engine.rs crates/runtime/src/pool.rs crates/runtime/src/report.rs

/root/repo/target/release/deps/libleopard_runtime-999dd80575415d03.rmeta: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/cli.rs crates/runtime/src/engine.rs crates/runtime/src/pool.rs crates/runtime/src/report.rs

crates/runtime/src/lib.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/cli.rs:
crates/runtime/src/engine.rs:
crates/runtime/src/pool.rs:
crates/runtime/src/report.rs:
