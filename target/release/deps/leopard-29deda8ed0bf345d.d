/root/repo/target/release/deps/leopard-29deda8ed0bf345d.d: src/bin/leopard.rs

/root/repo/target/release/deps/leopard-29deda8ed0bf345d: src/bin/leopard.rs

src/bin/leopard.rs:
