/root/repo/target/release/deps/rand-adf821668f681f6d.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-adf821668f681f6d.rlib: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-adf821668f681f6d.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
