/root/repo/target/release/examples/suite_sweep-ae707cdb969a4841.d: examples/suite_sweep.rs

/root/repo/target/release/examples/suite_sweep-ae707cdb969a4841: examples/suite_sweep.rs

examples/suite_sweep.rs:
