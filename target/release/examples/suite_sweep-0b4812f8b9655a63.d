/root/repo/target/release/examples/suite_sweep-0b4812f8b9655a63.d: examples/suite_sweep.rs

/root/repo/target/release/examples/suite_sweep-0b4812f8b9655a63: examples/suite_sweep.rs

examples/suite_sweep.rs:
